package medium

import (
	"testing"

	"injectable/internal/phy"
	"injectable/internal/sim"
)

// TestNoiseCorruptionDeterministicBelowThreshold: wideband noise within
// the capture margin reliably breaks frames — unlike same-modulation
// collisions, there is no phase race to win against noise.
func TestNoiseCorruptionDeterministicBelowThreshold(t *testing.T) {
	tb := newTestbed(t, Config{})
	tx := tb.radio("tx", 2)      // wanted signal from 2 m
	jammer := tb.radio("jam", 2) // equal power: SIR ≈ 0 < 9 dB threshold
	rx := tb.radio("rx", 0)
	rx.SetAccessAddress(1)

	corrupted := 0
	const trials = 50
	for i := 0; i < trials; i++ {
		rx.StartListening()
		got := false
		rx.OnFrame = func(r Received) {
			got = true
			if r.Corrupted {
				corrupted++
			}
		}
		tx.Transmit(dataFrame(1, 14))
		tb.sched.After(60*sim.Microsecond, "jam", func() { jammer.TransmitNoise(200 * sim.Microsecond) })
		tb.sched.Run()
		if !got {
			t.Fatal("no delivery")
		}
		rx.StopListening()
	}
	if corrupted != trials {
		t.Fatalf("noise at SIR 0 corrupted only %d/%d frames", corrupted, trials)
	}
}

// TestStrongSignalSurvivesWeakNoise: a frame well above the noise-capture
// threshold shrugs off a distant jammer.
func TestStrongSignalSurvivesWeakNoise(t *testing.T) {
	tb := newTestbed(t, Config{})
	tx := tb.radio("tx", 1)       // close: strong at rx
	jammer := tb.radio("jam", 20) // far: ≈ −26 dB relative
	rx := tb.radio("rx", 0)
	rx.SetAccessAddress(1)
	rx.StartListening()

	var got *Received
	rx.OnFrame = func(r Received) { got = &r }
	tx.Transmit(dataFrame(1, 14))
	tb.sched.After(60*sim.Microsecond, "jam", func() { jammer.TransmitNoise(200 * sim.Microsecond) })
	tb.sched.Run()
	if got == nil {
		t.Fatal("no delivery")
	}
	if got.Corrupted {
		t.Fatal("weak distant noise corrupted a strong frame")
	}
}

// TestTxPowerAffectsReach: raising transmit power extends the usable range.
func TestTxPowerAffectsReach(t *testing.T) {
	tb := newTestbed(t, Config{})
	tx := tb.radio("tx", 0)
	rx := tb.radio("rx", 310) // RSSI ≈ −90 dBm at 0 dBm tx: right at sensitivity
	rx.SetAccessAddress(1)

	deliveries := func() int {
		n := 0
		for i := 0; i < 20; i++ {
			rx.StartListening()
			got := false
			rx.OnFrame = func(r Received) {
				if !r.Corrupted {
					n++
				}
				got = true
			}
			tx.Transmit(dataFrame(1, 5))
			tb.sched.Run()
			_ = got
			rx.StopListening()
		}
		return n
	}
	atDefault := deliveries()
	tx.SetTxPower(8) // nRF52840 max
	atMax := deliveries()
	if atMax <= atDefault {
		t.Fatalf("power increase did not help: %d vs %d deliveries", atDefault, atMax)
	}
	if got := tx.TxPower(); got != 8 {
		t.Fatalf("TxPower = %v", got)
	}
}

// TestRSSIFromReporting sanity-checks the link-budget helper.
func TestRSSIFromReporting(t *testing.T) {
	tb := newTestbed(t, Config{})
	a := tb.radio("a", 0)
	b := tb.radio("b", 2)
	rssi := a.RSSIFrom(b, phy.Channel(17))
	if rssi > -40 || rssi < -60 {
		t.Fatalf("RSSIFrom 2 m = %v", rssi)
	}
}
