package medium

import (
	"injectable/internal/obs"
	"injectable/internal/phy"
)

// instruments holds the medium's pre-registered metric handles plus the
// per-channel occupancy tracker, and forwards correlation events to the
// forensics ledger. A nil *instruments (observability off) is a no-op.
type instruments struct {
	med       *Medium
	hub       *obs.Hub
	occupancy *phy.Occupancy

	txFrames   *obs.Counter
	txNoise    *obs.Counter
	locks      *obs.Counter
	lockFails  *obs.Counter
	delivered  *obs.Counter
	collisions *obs.Counter
	corrupted  *obs.Counter
	sir        *obs.Histogram
}

func newInstruments(m *Medium, hub *obs.Hub) *instruments {
	if hub == nil {
		return nil
	}
	r := hub.Reg()
	return &instruments{
		med:        m,
		hub:        hub,
		occupancy:  phy.NewOccupancy(r),
		txFrames:   r.Counter("medium.tx.frames"),
		txNoise:    r.Counter("medium.tx.noise"),
		locks:      r.Counter("medium.rx.lock"),
		lockFails:  r.Counter("medium.rx.lock_fail"),
		delivered:  r.Counter("medium.rx.delivered"),
		collisions: r.Counter("medium.rx.collisions"),
		corrupted:  r.Counter("medium.rx.corrupted"),
		sir:        r.Histogram("medium.rx.sir_db", obs.LinearBuckets(-30, 3, 21)),
	}
}

// onTxBegin accounts a transmission start.
func (ins *instruments) onTxBegin(t *transmission) {
	if ins == nil {
		return
	}
	if t.noise {
		ins.txNoise.Inc()
	} else {
		ins.txFrames.Inc()
	}
	ins.occupancy.Observe(t.channel, t.end.Sub(t.start), t.noise)
	ins.hub.Led().MediumTx(t.radio.name, uint8(t.channel), t.start, t.end, t.noise)
}

// onLock accounts a successful preamble+AA lock at radio r.
func (ins *instruments) onLock(r *Radio, t *transmission) {
	if ins == nil {
		return
	}
	ins.locks.Inc()
	ins.hub.Led().MediumLock(r.name, t.radio.name, t.start, float64(ins.med.rssiAt(t, r)))
}

// onLockFail accounts a defeated preamble lock at radio r.
func (ins *instruments) onLockFail(r *Radio, t *transmission, reason string) {
	if ins == nil {
		return
	}
	ins.lockFails.Inc()
	ins.hub.Led().MediumLockFail(r.name, t.radio.name, t.start, reason)
}

// onDeliver accounts a completed reception with its collision outcome.
func (ins *instruments) onDeliver(r *Radio, t *transmission, rx *Received, collided bool, minSIR float64) {
	if ins == nil {
		return
	}
	ins.delivered.Inc()
	if collided {
		ins.collisions.Inc()
		ins.sir.Observe(minSIR)
	}
	if rx.Corrupted {
		ins.corrupted.Inc()
	}
	ins.hub.Led().MediumDeliver(r.name, t.radio.name, t.start,
		float64(rx.RSSI), collided, minSIR, rx.Corrupted)
}

// probeRSSI estimates the received power at radio "to" for a
// transmission from radio "from" on channel ch — the ledger uses it to
// reconstruct the master's signal at the victim after the fact.
func (m *Medium) probeRSSI(from, to string, ch uint8) (float64, bool) {
	var a, b *Radio
	for _, r := range m.radios {
		if a == nil && r.name == from {
			a = r
		}
		if b == nil && r.name == to {
			b = r
		}
	}
	if a == nil || b == nil {
		return 0, false
	}
	return float64(phy.ReceivedPower(m.cfg.PathLoss, a.txPower, a.pos, b.pos, phy.Channel(ch))), true
}
