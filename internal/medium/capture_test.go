package medium

import (
	"testing"
	"testing/quick"

	"injectable/internal/sim"
)

func TestPhaseCaptureMonotoneInSIR(t *testing.T) {
	m := DefaultCaptureModel()
	ov := 140 * sim.Microsecond
	prev := -1.0
	for sir := -30.0; sir <= 30; sir += 2 {
		p := m.SurvivalProbability(sir, ov)
		if p < prev {
			t.Fatalf("survival not monotone in SIR at %f dB", sir)
		}
		prev = p
	}
}

func TestPhaseCaptureMonotoneInOverlap(t *testing.T) {
	m := DefaultCaptureModel()
	prev := 2.0
	for ov := sim.Duration(0); ov <= 300*sim.Microsecond; ov += 20 * sim.Microsecond {
		p := m.SurvivalProbability(0, ov)
		if p > prev {
			t.Fatalf("survival not decreasing in overlap at %v", ov)
		}
		prev = p
	}
}

func TestPhaseCaptureCalibration(t *testing.T) {
	// The tuning target (DESIGN.md): at SIR 0 and ~140 µs overlap the
	// per-attempt success is ≈0.3–0.4, so the paper's "median below 4
	// attempts" emerges.
	m := DefaultCaptureModel()
	p := m.SurvivalProbability(0, 140*sim.Microsecond)
	if p < 0.25 || p > 0.45 {
		t.Fatalf("survival at SIR=0, 140µs = %.3f, want ≈0.3–0.4", p)
	}
	// Strong attacker: near-certain survival.
	if p := m.SurvivalProbability(20, 140*sim.Microsecond); p < 0.85 {
		t.Fatalf("survival at +20 dB = %.3f, want >0.85", p)
	}
	// 10 m vs 2 m (−14 dB): rare but clearly possible.
	if p := m.SurvivalProbability(-14, 140*sim.Microsecond); p < 0.02 || p > 0.3 {
		t.Fatalf("survival at −14 dB = %.3f, want small but non-zero", p)
	}
}

func TestPhaseCaptureZeroOverlapAlwaysSurvives(t *testing.T) {
	m := DefaultCaptureModel()
	rng := sim.NewRNG(1)
	for i := 0; i < 100; i++ {
		if !m.Survives(rng, -40, 0) {
			t.Fatal("zero overlap corrupted")
		}
	}
}

func TestPhaseCaptureProbabilityBounds(t *testing.T) {
	m := DefaultCaptureModel()
	f := func(sir int8, ovUS uint16) bool {
		p := m.SurvivalProbability(float64(sir), sim.Duration(ovUS)*sim.Microsecond)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPessimistic(t *testing.T) {
	var m Pessimistic
	rng := sim.NewRNG(1)
	if m.Survives(rng, 100, sim.Microsecond) {
		t.Fatal("pessimistic survived overlap")
	}
	if !m.Survives(rng, -100, 0) {
		t.Fatal("pessimistic corrupted without overlap")
	}
	if m.Name() != "pessimistic" {
		t.Fatal("name")
	}
}

func TestCoinFlip(t *testing.T) {
	m := CoinFlip{P: 0.5}
	rng := sim.NewRNG(1)
	wins := 0
	for i := 0; i < 1000; i++ {
		if m.Survives(rng, -50, sim.Microsecond) {
			wins++
		}
	}
	if wins < 400 || wins > 600 {
		t.Fatalf("coin flip frequency %d/1000", wins)
	}
	if !m.Survives(rng, 0, 0) {
		t.Fatal("no-overlap must survive")
	}
	if m.Name() != "coin-flip" {
		t.Fatal("name")
	}
}

func TestModelNames(t *testing.T) {
	if DefaultCaptureModel().Name() != "phase-capture" {
		t.Fatal("name")
	}
}

func TestFrameLossFromSNR(t *testing.T) {
	if p := frameLossFromSNR(40, 14); p != 0 {
		t.Errorf("high SNR loss = %f, want 0", p)
	}
	low := frameLossFromSNR(8, 14)
	lower := frameLossFromSNR(4, 14)
	if !(lower > low) {
		t.Errorf("loss not increasing as SNR falls: %f vs %f", low, lower)
	}
	if lower <= 0 || lower > 1 {
		t.Errorf("loss out of bounds: %f", lower)
	}
}
