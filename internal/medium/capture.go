package medium

import (
	"math"

	"injectable/internal/sim"
)

// CaptureModel decides whether a frame a receiver is locked onto survives
// an interfering transmission overlapping its body.
//
// The paper (§V-D) observes that a collision "might not result in a
// corruption when the power of the injected signal is by far superior to
// the power of the legitimate signal", and that survival is otherwise
// possible "depending on the phase difference between the injected and
// legitimate signals". The models here encode that physics at different
// levels of fidelity; the default is PhaseCapture. The ablation benchmarks
// compare models (DESIGN.md §4.1).
type CaptureModel interface {
	// Survives reports whether the locked frame survives an interferer at
	// the given signal-to-interference ratio (dB, positive = wanted frame
	// stronger) overlapping the frame body for the given duration.
	Survives(rng *sim.RNG, sirDB float64, overlap sim.Duration) bool
	// Name identifies the model in benchmark output.
	Name() string
}

// PhaseCapture models FM capture of two constant-envelope GFSK signals.
//
// Two mechanisms combine:
//
//   - Capture: when the wanted signal is much stronger than the interferer
//     the demodulator tracks it throughout the overlap; when much weaker the
//     overlap is hopeless. The crossover is soft (random relative phase and
//     carrier offset), modelled as a logistic in SIR.
//
//   - Phase bursts: near SIR ≈ 0 the two carriers beat against each other
//     (carrier offsets within ±150 kHz → beat periods of several µs).
//     Demodulation errors arrive in bursts during adverse beat phases, so a
//     frame survives if *no* adverse burst lands inside the overlap — a
//     Poisson thinning with rate increasing as SIR falls.
//
// Survival probability:
//
//	P = σ((SIR − FloorSIR)/FloorScale) × exp(−overlap_µs · BurstRate · σ(−SIR/BeatScale))
//
// with σ the logistic function. The defaults are tuned so that the paper's
// measured behaviour is reproduced in shape: at equal power and a ~140 µs
// overlap (the paper's 22-byte frame, Hop Interval 25–150) the per-attempt
// success probability is ≈ 0.3–0.4, giving the observed "median number of
// attempts below 4"; it rises toward 1 when the attacker is closer than the
// master and falls off (with sharply growing variance) at 10 m or behind a
// wall — while remaining non-zero, matching "each tested connection leads
// to a successful injection".
type PhaseCapture struct {
	// BurstRate is the adverse-phase burst rate, per µs, at SIR = 0.
	BurstRate float64
	// BeatScale softens the SIR dependence of the burst rate (dB).
	BeatScale float64
	// FloorSIR is the SIR (dB) below which capture becomes hopeless.
	FloorSIR float64
	// FloorScale softens the floor (dB).
	FloorScale float64
}

// DefaultCaptureModel returns the PhaseCapture tuning used throughout the
// reproduction.
func DefaultCaptureModel() *PhaseCapture {
	return &PhaseCapture{BurstRate: 0.015, BeatScale: 3, FloorSIR: -20, FloorScale: 4}
}

var _ CaptureModel = (*PhaseCapture)(nil)

// SurvivalProbability returns the closed-form survival probability. Exposed
// so the sensitivity analysis can report the analytic curve next to the
// simulated one.
func (p *PhaseCapture) SurvivalProbability(sirDB float64, overlap sim.Duration) float64 {
	if overlap <= 0 {
		return 1
	}
	ovUS := float64(overlap) / float64(sim.Microsecond)
	rate := p.BurstRate * logistic(-sirDB/p.BeatScale)
	floor := logistic((sirDB - p.FloorSIR) / p.FloorScale)
	return floor * math.Exp(-ovUS*rate)
}

// Survives implements CaptureModel.
func (p *PhaseCapture) Survives(rng *sim.RNG, sirDB float64, overlap sim.Duration) bool {
	return rng.Bool(p.SurvivalProbability(sirDB, overlap))
}

// Name implements CaptureModel.
func (p *PhaseCapture) Name() string { return "phase-capture" }

// Pessimistic corrupts on any body overlap regardless of power — the
// assumption under which Santos et al. dismissed injection as impractical.
type Pessimistic struct{}

var _ CaptureModel = Pessimistic{}

// Survives implements CaptureModel.
func (Pessimistic) Survives(_ *sim.RNG, _ float64, overlap sim.Duration) bool {
	return overlap <= 0
}

// Name implements CaptureModel.
func (Pessimistic) Name() string { return "pessimistic" }

// CoinFlip survives any collision with fixed probability P, ignoring SIR
// and overlap — a power-blind strawman for the ablation study.
type CoinFlip struct{ P float64 }

var _ CaptureModel = CoinFlip{}

// Survives implements CaptureModel.
func (c CoinFlip) Survives(rng *sim.RNG, _ float64, overlap sim.Duration) bool {
	if overlap <= 0 {
		return true
	}
	return rng.Bool(c.P)
}

// Name implements CaptureModel.
func (c CoinFlip) Name() string { return "coin-flip" }

// logistic is the standard logistic function 1/(1+e^−x).
func logistic(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
