package medium

import (
	"fmt"

	"injectable/internal/phy"
	"injectable/internal/sim"
)

// radioState tracks what the half-duplex radio is doing.
type radioState int

const (
	radioIdle radioState = iota + 1
	radioListening
	radioLocked
	radioTransmitting
)

// RadioConfig configures a Radio.
type RadioConfig struct {
	// Name identifies the radio in traces (e.g. "master", "attacker").
	Name string
	// Position of the antenna in the floor plan.
	Position phy.Position
	// TxPower in dBm; zero value means phy.DefaultTxPower. Use SetTxPower
	// for explicit 0 dBm (which equals the default anyway).
	TxPower phy.DBm
	// Sensitivity in dBm; zero value means phy.DefaultSensitivity.
	Sensitivity phy.DBm
	// Mode is the PHY in use; zero value means LE 1M.
	Mode phy.Mode
}

// Radio is one half-duplex BLE radio attached to a Medium. All methods must
// be called from simulation callbacks (single-threaded).
//
// The receive path mirrors real BLE silicon: the radio is tuned to one
// channel with an access-address correlator; while listening it locks onto
// the first frame whose preamble + access address it decodes cleanly, then
// delivers the whole frame (possibly corrupted by a collision) to OnFrame.
// A promiscuous radio locks on any access address — that is the attacker's
// and the IDS's sniffing mode.
type Radio struct {
	name        string
	med         *Medium
	id          int // index into Medium.radios; keys the path-loss cache
	pos         phy.Position
	txPower     phy.DBm
	sensitivity phy.DBm
	mode        phy.Mode

	// Scheduler labels are hot-path strings; concatenating them per event
	// allocates, so they are built once here.
	lockLabel       string
	txEndLabel      string
	noiseEndLabel   string
	rxCompleteLabel string

	channel     phy.Channel
	aaFilter    uint32
	promiscuous bool

	state   radioState
	locked  *transmission
	txEnd   sim.EventRef
	pending map[*transmission]sim.EventRef

	// OnFrame is called when a locked frame completes, even if corrupted.
	OnFrame func(rx Received)
	// OnTxDone is called when this radio's own transmission ends.
	OnTxDone func()
}

// NewRadio creates a radio and attaches it to the medium.
func (m *Medium) NewRadio(cfg RadioConfig) *Radio {
	if cfg.TxPower == 0 {
		cfg.TxPower = phy.DefaultTxPower
	}
	if cfg.Sensitivity == 0 {
		cfg.Sensitivity = phy.DefaultSensitivity
	}
	if cfg.Mode == 0 {
		cfg.Mode = phy.LE1M
	}
	r := &Radio{
		name:            cfg.Name,
		med:             m,
		id:              len(m.radios),
		pos:             cfg.Position,
		txPower:         cfg.TxPower,
		sensitivity:     cfg.Sensitivity,
		mode:            cfg.Mode,
		lockLabel:       cfg.Name + ":lock",
		txEndLabel:      cfg.Name + ":tx-end",
		noiseEndLabel:   cfg.Name + ":noise-end",
		rxCompleteLabel: cfg.Name + ":rx-complete",
		state:           radioIdle,
		pending:         make(map[*transmission]sim.EventRef),
	}
	m.radios = append(m.radios, r)
	m.invalidateLossCache()
	return r
}

// Name returns the radio's trace name.
func (r *Radio) Name() string { return r.name }

// Position returns the antenna position.
func (r *Radio) Position() phy.Position { return r.pos }

// SetPosition moves the radio (the experiment harness repositions the
// attacker between runs). Moving invalidates the medium's path-loss cache.
func (r *Radio) SetPosition(p phy.Position) {
	r.pos = p
	r.med.invalidateLossCache()
}

// TxPower returns the transmit power.
func (r *Radio) TxPower() phy.DBm { return r.txPower }

// SetTxPower changes the transmit power.
func (r *Radio) SetTxPower(p phy.DBm) { r.txPower = p }

// Mode returns the radio's PHY mode.
func (r *Radio) Mode() phy.Mode { return r.mode }

// Channel returns the tuned channel.
func (r *Radio) Channel() phy.Channel { return r.channel }

// SetChannel retunes the radio. Retuning aborts any in-progress lock
// attempts and reception (as on real hardware).
func (r *Radio) SetChannel(ch phy.Channel) {
	if ch == r.channel {
		return
	}
	r.channel = ch
	r.abortReceive()
}

// SetAccessAddress programs the AA correlator.
func (r *Radio) SetAccessAddress(aa uint32) {
	r.aaFilter = aa
}

// AccessAddress returns the programmed correlator value.
func (r *Radio) AccessAddress() uint32 { return r.aaFilter }

// SetPromiscuous toggles matching any access address.
func (r *Radio) SetPromiscuous(p bool) { r.promiscuous = p }

// Listening reports whether the radio is listening or locked on a frame.
func (r *Radio) Listening() bool { return r.state == radioListening || r.state == radioLocked }

// Transmitting reports whether the radio is mid-transmission.
func (r *Radio) Transmitting() bool { return r.state == radioTransmitting }

// Locked reports whether the radio is currently locked onto an incoming
// frame (reception in progress).
func (r *Radio) Locked() bool { return r.state == radioLocked }

// Acquiring reports whether a frame's preamble is currently arriving (a
// lock attempt is pending). Receive-window close logic uses this to honour
// the spec rule that only the packet *start* must fall inside the window.
func (r *Radio) Acquiring() bool { return len(r.pending) > 0 }

// StartListening opens the receiver on the current channel. Frames already
// mid-air are not receivable (their preamble has passed) — which is exactly
// why an attacker transmitting before the slave's receive window opens
// fails to inject.
func (r *Radio) StartListening() {
	switch r.state {
	case radioTransmitting:
		panic(fmt.Sprintf("medium: %s: StartListening while transmitting", r.name))
	case radioListening, radioLocked:
		return
	default:
		r.state = radioListening
	}
}

// StopListening closes the receiver. If a frame lock is in progress the
// reception completes anyway (real receivers finish the frame they are on;
// the spec's window widening only constrains the *start* of the packet).
func (r *Radio) StopListening() {
	if r.state == radioListening {
		r.state = radioIdle
		r.cancelPendingLocks()
	}
}

// abortReceive hard-stops listening and any locked reception.
func (r *Radio) abortReceive() {
	r.cancelPendingLocks()
	if r.state == radioListening || r.state == radioLocked {
		r.state = radioIdle
		r.locked = nil
	}
}

func (r *Radio) cancelPendingLocks() {
	for tx, ev := range r.pending {
		r.med.sched.Cancel(ev)
		delete(r.pending, tx)
	}
}

// Transmit sends a frame starting now. The radio must not already be
// transmitting; listening is implicitly stopped (half duplex).
func (r *Radio) Transmit(f Frame) {
	if r.state == radioTransmitting {
		panic(fmt.Sprintf("medium: %s: Transmit while transmitting", r.name))
	}
	r.abortReceive()
	f = r.med.cloneFrame(f)
	f.Mode = r.mode
	now := r.med.sched.Now()
	t := &transmission{
		radio:   r,
		frame:   f,
		channel: r.channel,
		start:   now,
		end:     now.Add(f.AirTime()),
	}
	r.state = radioTransmitting
	r.med.begin(t)
	r.txEnd = r.med.sched.At(t.end, r.txEndLabel, func() {
		r.state = radioIdle
		if r.OnTxDone != nil {
			r.OnTxDone()
		}
	})
}

// TransmitNoise emits an unmodulated jamming burst for the given duration
// on the current channel (the BTLEJack-style baseline uses this).
func (r *Radio) TransmitNoise(d sim.Duration) {
	if r.state == radioTransmitting {
		panic(fmt.Sprintf("medium: %s: TransmitNoise while transmitting", r.name))
	}
	r.abortReceive()
	now := r.med.sched.Now()
	t := &transmission{
		radio:   r,
		channel: r.channel,
		start:   now,
		end:     now.Add(d),
		noise:   true,
	}
	r.state = radioTransmitting
	r.med.begin(t)
	r.txEnd = r.med.sched.At(t.end, r.noiseEndLabel, func() {
		r.state = radioIdle
		if r.OnTxDone != nil {
			r.OnTxDone()
		}
	})
}

// maybeScheduleLock is called by the medium when transmission t starts:
// if this radio could decode t's preamble it schedules a lock attempt at
// the end of the preamble + access address.
func (r *Radio) maybeScheduleLock(t *transmission, lockAt sim.Time) {
	if r.state != radioListening {
		return
	}
	if t.channel != r.channel {
		return
	}
	if float64(r.med.rssiAt(t, r)) < float64(r.sensitivity) {
		return
	}
	if !r.promiscuous && t.frame.AccessAddress != r.aaFilter {
		return
	}
	ev := r.med.sched.At(lockAt, r.lockLabel, func() {
		delete(r.pending, t)
		r.tryLock(t)
	})
	r.pending[t] = ev
}

// tryLock attempts to lock onto t once its preamble+AA has fully arrived.
func (r *Radio) tryLock(t *transmission) {
	if r.state != radioListening {
		return // lost the race to another frame, stopped, or transmitting
	}
	if r.channel != t.channel {
		return
	}
	if !r.med.preambleClean(t, r) {
		sim.Emit(r.med.cfg.Tracer, r.med.sched.Now(), r.name, "lock-fail", func() []sim.Field {
			return []sim.Field{sim.F("from", t.radio.name), sim.F("reason", "preamble-collision")}
		})
		r.med.ins.onLockFail(r, t, "preamble-collision")
		return
	}
	r.state = radioLocked
	r.locked = t
	r.cancelPendingLocks()
	sim.Emit(r.med.cfg.Tracer, r.med.sched.Now(), r.name, "lock", func() []sim.Field {
		return []sim.Field{sim.F("from", t.radio.name), sim.F("ch", t.channel), sim.F("start", t.start)}
	})
	r.med.ins.onLock(r, t)
	r.med.sched.At(t.end, r.rxCompleteLabel, func() {
		if r.locked != t {
			return // channel change or transmit aborted the reception
		}
		r.locked = nil
		r.state = radioIdle
		r.med.deliver(t, r)
	})
}

// completeRx hands the finished frame to the owner.
func (r *Radio) completeRx(rx Received) {
	if r.OnFrame != nil {
		r.OnFrame(rx)
	}
}

// RSSIFrom returns the received power at this radio for a hypothetical
// transmission from other on channel ch — used by experiment setup code to
// report link budgets, not by protocol logic.
func (r *Radio) RSSIFrom(other *Radio, ch phy.Channel) phy.DBm {
	return phy.ReceivedPower(r.med.cfg.PathLoss, other.txPower, other.pos, r.pos, ch)
}
