package medium

import (
	"testing"

	"injectable/internal/phy"
	"injectable/internal/sim"
)

// --- scheduler-boundary edge cases around pruneActive / overlap ---

func TestPruneActiveDropsTransmissionEndingExactlyNow(t *testing.T) {
	tb := newTestbed(t, Config{})
	tx := tb.radio("tx", 0)
	tx.SetChannel(5)
	f := dataFrame(0x12345678, 10)
	tx.Transmit(f)
	end := sim.Time(phy.LE1M.AirTime(10))

	// Advance the clock to exactly the transmission's end instant. A frame
	// ending exactly at now is over (intervals are half-open [start, end)),
	// so pruneActive must drop it.
	tb.sched.RunUntil(end)
	tb.med.pruneActive()
	if n := len(tb.med.active); n != 0 {
		t.Fatalf("pruneActive kept %d transmissions ending exactly at now", n)
	}
}

func TestPruneActiveKeepsInFlightTransmission(t *testing.T) {
	tb := newTestbed(t, Config{})
	tx := tb.radio("tx", 0)
	tx.SetChannel(5)
	tx.Transmit(dataFrame(0x12345678, 10))
	end := sim.Time(phy.LE1M.AirTime(10))

	tb.sched.RunUntil(end - 1)
	tb.med.pruneActive()
	if n := len(tb.med.active); n != 1 {
		t.Fatalf("pruneActive dropped an in-flight transmission (kept %d)", n)
	}
}

func TestOverlapBoundaries(t *testing.T) {
	us := func(n int64) sim.Time { return sim.Time(n) * sim.Time(sim.Microsecond) }
	cases := []struct {
		name           string
		a1, a2, b1, b2 sim.Time
		want           sim.Duration
	}{
		{"disjoint", us(0), us(10), us(20), us(30), 0},
		{"touching: b starts exactly when a ends", us(0), us(10), us(10), us(20), 0},
		{"touching: a starts exactly when b ends", us(10), us(20), us(0), us(10), 0},
		{"zero-length b inside a", us(0), us(10), us(5), us(5), 0},
		{"identical", us(0), us(10), us(0), us(10), sim.Duration(us(10))},
		{"partial", us(0), us(10), us(6), us(20), sim.Duration(us(4))},
		{"contained", us(0), us(10), us(2), us(4), sim.Duration(us(2))},
	}
	for _, c := range cases {
		if got := overlap(c.a1, c.a2, c.b1, c.b2); got != c.want {
			t.Errorf("%s: overlap = %v, want %v", c.name, got, c.want)
		}
		// overlap is symmetric in its two intervals.
		if got := overlap(c.b1, c.b2, c.a1, c.a2); got != c.want {
			t.Errorf("%s (swapped): overlap = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestInterferersDuringReusesScratch(t *testing.T) {
	tb := newTestbed(t, Config{})
	a := tb.radio("a", 0)
	b := tb.radio("b", 1)
	a.SetChannel(5)
	b.SetChannel(5)
	a.Transmit(dataFrame(0x1, 20))
	b.Transmit(dataFrame(0x2, 20))

	want := tb.med.active[0]
	first := tb.med.interferersDuring(want, 5, 0, sim.Time(sim.Millisecond))
	if len(first) != 1 {
		t.Fatalf("interferers = %d, want 1", len(first))
	}
	second := tb.med.interferersDuring(want, 5, 0, sim.Time(sim.Millisecond))
	if len(second) != 1 || second[0] != first[0] {
		t.Fatalf("second scan disagrees: %v vs %v", second, first)
	}
	if &first[0] != &second[0] {
		t.Error("interferersDuring did not reuse the scratch buffer")
	}
}

// --- lazy clone (no consumer → no copy, same RNG stream) ---

func TestDeliverWithoutConsumerKeepsRNGStream(t *testing.T) {
	// Two identical worlds; in one the receiver has no OnFrame. The RNG
	// draw sequence must be unaffected, which we check by comparing the
	// corruption pattern of a *later* delivered frame.
	run := func(consumeFirst bool) (pdu []byte, crc uint32) {
		tb := newTestbed(t, Config{Capture: Pessimistic{}})
		tx := tb.radio("tx", 0)
		jam := tb.radio("jam", 1)
		rx := tb.radio("rx", 2)
		for _, r := range []*Radio{tx, jam, rx} {
			r.SetChannel(5)
		}
		rx.SetAccessAddress(0x11111111)
		rx.StartListening()
		var got []Received
		if consumeFirst {
			rx.OnFrame = func(r Received) { got = append(got, r) }
		}
		// First frame collides (pessimistic capture → corrupted → corruption
		// draws consumed) whether or not OnFrame is set.
		tx.Transmit(dataFrame(0x11111111, 16))
		tb.sched.After(40*sim.Microsecond, "jam", func() {
			jam.Transmit(dataFrame(0x2222, 16))
		})
		tb.sched.Run()

		// Second frame: delivered cleanly; also corrupt it via collision so
		// its corruption pattern reflects the RNG position.
		rx.OnFrame = func(r Received) { got = append(got, r) }
		rx.StartListening()
		tx.Transmit(dataFrame(0x11111111, 16))
		tb.sched.After(40*sim.Microsecond, "jam2", func() {
			jam.Transmit(dataFrame(0x3333, 16))
		})
		tb.sched.Run()
		last := got[len(got)-1]
		if !last.Corrupted {
			t.Fatal("expected the final frame to be corrupted under Pessimistic capture")
		}
		return last.Frame.PDU, last.Frame.CRC
	}

	pduA, crcA := run(true)
	pduB, crcB := run(false)
	if crcA != crcB {
		t.Fatalf("CRC corruption diverged: %06x vs %06x — RNG stream depends on OnFrame", crcA, crcB)
	}
	for i := range pduA {
		if pduA[i] != pduB[i] {
			t.Fatalf("PDU corruption diverged at byte %d — RNG stream depends on OnFrame", i)
		}
	}
}

func TestDeliveredFrameDoesNotAliasTransmitted(t *testing.T) {
	tb := newTestbed(t, Config{})
	tx := tb.radio("tx", 0)
	rx := tb.radio("rx", 2)
	tx.SetChannel(5)
	rx.SetChannel(5)
	rx.SetAccessAddress(0x12345678)
	rx.StartListening()
	var got []Received
	rx.OnFrame = func(r Received) { got = append(got, r) }
	f := dataFrame(0x12345678, 10)
	tx.Transmit(f)
	tb.sched.Run()
	if len(got) != 1 {
		t.Fatalf("delivered %d frames", len(got))
	}
	got[0].Frame.PDU[0] ^= 0xFF
	if tb.med.active[0].frame.PDU[0] == got[0].Frame.PDU[0] {
		t.Fatal("delivered frame aliases the in-flight transmission's PDU")
	}
}

// --- path-loss cache invalidation ---

func TestPathLossCacheInvalidatedOnMove(t *testing.T) {
	tb := newTestbed(t, Config{})
	tx := tb.radio("tx", 0)
	rx := tb.radio("rx", 2)
	tr := &transmission{radio: tx, channel: 5, frame: Frame{Mode: phy.LE1M}}

	near := tb.med.rssiAt(tr, rx)
	rx.SetPosition(phy.Position{X: 8})
	far := tb.med.rssiAt(tr, rx)
	if far >= near {
		t.Fatalf("RSSI did not drop after moving away: near=%v far=%v", near, far)
	}
	rx.SetPosition(phy.Position{X: 2})
	if again := tb.med.rssiAt(tr, rx); again != near {
		t.Fatalf("RSSI after moving back = %v, want %v", again, near)
	}
	// A new radio grows the cache without breaking existing entries.
	tb.radio("late", 4)
	if again := tb.med.rssiAt(tr, rx); again != near {
		t.Fatalf("RSSI after adding a radio = %v, want %v", again, near)
	}
}

func TestPathLossCacheRespectsTxPowerChange(t *testing.T) {
	tb := newTestbed(t, Config{})
	tx := tb.radio("tx", 0)
	rx := tb.radio("rx", 2)
	tr := &transmission{radio: tx, channel: 5, frame: Frame{Mode: phy.LE1M}}
	base := tb.med.rssiAt(tr, rx)
	tx.SetTxPower(10)
	boosted := tb.med.rssiAt(tr, rx)
	if boosted != base+10 {
		t.Fatalf("RSSI after +10 dBm = %v, want %v (cache must hold loss, not power)", boosted, base+10)
	}
}

// --- allocation benchmarks (tracked by the CI regression gate) ---

// BenchmarkDeliver pins the full deliver path — RSSI lookup, interferer
// scan, fade draw — at zero allocations with tracing off and no consumer.
func BenchmarkDeliver(b *testing.B) {
	sched := sim.NewScheduler()
	med := New(sched, sim.NewRNG(42), Config{})
	tx := med.NewRadio(RadioConfig{Name: "tx", Position: phy.Position{X: 0}})
	rx := med.NewRadio(RadioConfig{Name: "rx", Position: phy.Position{X: 2}})
	tr := &transmission{
		radio: tx, channel: 5,
		frame: Frame{Mode: phy.LE1M, AccessAddress: 0x1, PDU: make([]byte, 22)},
		start: 0, end: sim.Time(phy.LE1M.AirTime(22)),
	}
	med.active = append(med.active, tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		med.deliver(tr, rx)
	}
}

// BenchmarkDeliverWithConsumer measures the same path with an OnFrame
// consumer attached: one arena-backed PDU clone per delivery.
func BenchmarkDeliverWithConsumer(b *testing.B) {
	sched := sim.NewScheduler()
	arena := sim.NewByteArena()
	med := New(sched, sim.NewRNG(42), Config{Arena: arena})
	tx := med.NewRadio(RadioConfig{Name: "tx", Position: phy.Position{X: 0}})
	rx := med.NewRadio(RadioConfig{Name: "rx", Position: phy.Position{X: 2}})
	rx.OnFrame = func(Received) {}
	tr := &transmission{
		radio: tx, channel: 5,
		frame: Frame{Mode: phy.LE1M, AccessAddress: 0x1, PDU: make([]byte, 22)},
		start: 0, end: sim.Time(phy.LE1M.AirTime(22)),
	}
	med.active = append(med.active, tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2048 == 0 {
			arena.Reset()
		}
		med.deliver(tr, rx)
	}
}

// BenchmarkTransmitReceive is the end-to-end radio round trip: transmit,
// lock, deliver, through the scheduler.
func BenchmarkTransmitReceive(b *testing.B) {
	sched := sim.NewScheduler()
	arena := sim.NewByteArena()
	med := New(sched, sim.NewRNG(42), Config{Arena: arena})
	tx := med.NewRadio(RadioConfig{Name: "tx", Position: phy.Position{X: 0}})
	rx := med.NewRadio(RadioConfig{Name: "rx", Position: phy.Position{X: 2}})
	tx.SetChannel(5)
	rx.SetChannel(5)
	rx.SetAccessAddress(0x12345678)
	n := 0
	rx.OnFrame = func(Received) { n++; rx.StartListening() }
	rx.StartListening()
	f := Frame{Mode: phy.LE1M, AccessAddress: 0x12345678, PDU: make([]byte, 22)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2048 == 0 {
			arena.Reset()
		}
		tx.Transmit(f)
		sched.Run()
	}
	if n == 0 {
		b.Fatal("no frames delivered")
	}
}
