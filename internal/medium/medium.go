// Package medium implements the shared 2.4 GHz radio medium connecting
// simulated BLE radios: frame transport, preamble/access-address lock,
// collision overlap computation and a pluggable capture model deciding
// whether a collided frame survives.
//
// The InjectaBLE race plays out entirely inside this package's rules:
//
//   - a receiver locks onto the first frame whose preamble + access address
//     it hears cleanly while listening — so an injected frame that starts
//     inside the slave's widened receive window before the legitimate
//     master's frame wins the lock (paper §V, Fig. 3);
//   - a frame whose tail collides with a later transmission survives only
//     if the capture model says so, which depends on the signal-to-
//     interference ratio at the receiver and the overlap length (paper
//     §V-D, Fig. 5 situations a/b/c).
package medium

import (
	"fmt"
	"math"

	"injectable/internal/obs"
	"injectable/internal/phy"
	"injectable/internal/sim"
)

// lossUnset marks an empty slot in the per-radio-pair path-loss cache.
// Real losses are finite positive dB figures, so +Inf is unreachable.
var lossUnset = math.Inf(1)

// Frame is the logical content of one on-air BLE frame: everything after
// the preamble, before whitening. The CRC field carries the 24-bit CRC as
// computed by the *sender* (an attacker who sniffed the wrong CRCInit will
// naturally produce a CRC the receiver rejects).
type Frame struct {
	Mode          phy.Mode
	AccessAddress uint32
	PDU           []byte // LL header + payload
	CRC           uint32 // 24-bit, low 24 bits significant
}

// AirTime returns the on-air duration of the frame including preamble.
func (f Frame) AirTime() sim.Duration { return f.Mode.AirTime(len(f.PDU)) }

// Clone deep-copies the frame so receivers can mutate safely.
func (f Frame) Clone() Frame {
	c := f
	c.PDU = append([]byte(nil), f.PDU...)
	return c
}

// Received describes one frame delivered to a listening radio.
type Received struct {
	Frame     Frame
	Channel   phy.Channel
	RSSI      phy.DBm
	StartAt   sim.Time // on-air start of the frame (the anchor-point time)
	EndAt     sim.Time // on-air end of the frame
	Corrupted bool     // a collision mangled the frame (CRC will not match)
}

// TxObservation is what a wideband observer (e.g. the IDS of paper §VIII)
// sees: raw transmission activity, without needing to win a lock.
type TxObservation struct {
	Source  string
	Channel phy.Channel
	StartAt sim.Time
	EndAt   sim.Time
	Power   phy.DBm
	Frame   Frame
	Noise   bool // pure jamming burst, no decodable frame
}

// Observer receives every transmission start on the medium. Used by the
// IDS and by test instrumentation; protocol code must not use it.
type Observer interface {
	ObserveTx(o TxObservation)
}

// DeliverObservation is the medium's own account of one frame delivery to
// a locked receiver: which transmission completed, what interfered with it
// and which mechanism (if any) corrupted it. Test instrumentation only —
// protocol code must not use it.
type DeliverObservation struct {
	Radio   string // receiving radio
	Source  string // transmitting radio
	Channel phy.Channel
	StartAt sim.Time // on-air start of the delivered frame
	EndAt   sim.Time // on-air end (also the delivery instant)
	RSSI    phy.DBm
	// Collided: at least one other transmission overlapped the frame body.
	Collided bool
	// MinSIRdB is the worst signal-to-interference ratio over all
	// interferers (0 when not collided).
	MinSIRdB float64
	// Corrupted mirrors the Received flag handed to the radio.
	Corrupted bool
	// CaptureLost: a frame interferer won the capture-model draw.
	CaptureLost bool
	// NoiseLost: a jamming burst within noiseCaptureThresholdDB corrupted
	// the frame (deterministic, no draw involved).
	NoiseLost bool
	// FadeLost: the sensitivity-fade draw near the noise floor fired.
	FadeLost bool
}

// noiseCaptureThresholdDB is the SIR above which a frame survives
// co-channel *noise* (jamming). GFSK demodulators need roughly this
// carrier-to-noise margin; below it the burst reliably breaks the CRC.
const noiseCaptureThresholdDB = 9.0

// transmission is one in-flight signal.
type transmission struct {
	radio   *Radio
	frame   Frame
	channel phy.Channel
	start   sim.Time
	end     sim.Time
	noise   bool
}

// Config configures a Medium.
type Config struct {
	// PathLoss computes attenuation between positions. Nil means free-space
	// log-distance with exponent 2.
	PathLoss phy.PathLossModel
	// Capture decides collision survival. Nil means DefaultCaptureModel().
	Capture CaptureModel
	// Tracer receives medium-level trace events. Nil means no tracing.
	Tracer sim.Tracer
	// PreambleCaptureMargin: an interferer within this margin of the wanted
	// signal during the preamble+AA defeats the lock. Default 3 dB.
	PreambleCaptureMargin float64
	// Obs receives medium-layer metrics and forensics-ledger events.
	// Nil means no observability instrumentation.
	Obs *obs.Hub
	// Arena, when set, backs frame-PDU clone buffers so per-frame copies
	// bump-allocate instead of hitting the garbage collector. Nil means the
	// medium owns a private arena. The arena must not be Reset while any
	// frame delivered by this medium is still referenced (in practice: reset
	// only between trials).
	Arena *sim.ByteArena
}

// Medium is the shared radio channel. Create radios with NewRadio; all
// timing runs on the supplied scheduler. Not safe for concurrent use — the
// simulation is single-threaded by design.
type Medium struct {
	sched     *sim.Scheduler
	rng       *sim.RNG
	cfg       Config
	radios     []*Radio
	active     []*transmission
	observers  []Observer
	deliverObs func(DeliverObservation)
	ins        *instruments
	arena      *sim.ByteArena

	// scratch is reused by interferersDuring so the overlap scan in the
	// deliver/lock hot path does not allocate. Safe because the result is
	// always consumed before the next call (capture models are pure and
	// never re-enter the medium).
	scratch []*transmission
	// loss caches path loss per (tx radio, rx radio, channel). Path loss
	// depends only on positions and channel frequency, both of which change
	// rarely (experiment setup), while deliver/preambleClean query the same
	// pairs every connection event. Entries hold lossUnset until computed;
	// SetPosition and NewRadio invalidate.
	loss []float64
}

// New creates a medium on the given scheduler.
func New(sched *sim.Scheduler, rng *sim.RNG, cfg Config) *Medium {
	if cfg.PathLoss == nil {
		cfg.PathLoss = &phy.LogDistance{}
	}
	if cfg.Capture == nil {
		cfg.Capture = DefaultCaptureModel()
	}
	if cfg.PreambleCaptureMargin == 0 {
		cfg.PreambleCaptureMargin = 3
	}
	if cfg.Arena == nil {
		cfg.Arena = sim.NewByteArena()
	}
	m := &Medium{sched: sched, rng: rng.Child("medium"), cfg: cfg, arena: cfg.Arena}
	m.ins = newInstruments(m, cfg.Obs)
	// The ledger reconstructs signal powers (e.g. the master's RSSI at
	// the victim) through the medium's own path-loss model.
	cfg.Obs.Led().SetRSSIProbe(m.probeRSSI)
	return m
}

// cloneFrame copies a frame, backing the PDU with the medium's arena.
func (m *Medium) cloneFrame(f Frame) Frame {
	c := f
	c.PDU = m.arena.Copy(f.PDU)
	return c
}

// invalidateLossCache grows the cache to the current radio count and marks
// every entry unset. Called when a radio is added or moved.
func (m *Medium) invalidateLossCache() {
	n := len(m.radios) * len(m.radios) * phy.NumChannels
	if cap(m.loss) < n {
		m.loss = make([]float64, n)
	}
	m.loss = m.loss[:n]
	for i := range m.loss {
		m.loss[i] = lossUnset
	}
}

// pathLoss returns the (cached) path loss from tx to rx on ch.
func (m *Medium) pathLoss(tx, rx *Radio, ch phy.Channel) float64 {
	idx := (tx.id*len(m.radios)+rx.id)*phy.NumChannels + int(ch)
	l := m.loss[idx]
	if l == lossUnset {
		l = float64(m.cfg.PathLoss.Loss(tx.pos, rx.pos, ch))
		m.loss[idx] = l
	}
	return l
}

// Scheduler returns the scheduler the medium runs on.
func (m *Medium) Scheduler() *sim.Scheduler { return m.sched }

// AddObserver registers a wideband observer.
func (m *Medium) AddObserver(o Observer) { m.observers = append(m.observers, o) }

// SetDeliverObserver installs a hook observing every frame delivery with
// its corruption attribution. Observation only: it never changes delivery
// outcomes or the RNG draw sequence. Nil uninstalls.
func (m *Medium) SetDeliverObserver(fn func(DeliverObservation)) { m.deliverObs = fn }

// Now returns the current simulation time.
func (m *Medium) Now() sim.Time { return m.sched.Now() }

// rssiAt returns the received power of t at radio r on t's channel. Only
// the path loss is cached, so SetTxPower takes effect immediately.
func (m *Medium) rssiAt(t *transmission, r *Radio) phy.DBm {
	return t.radio.txPower - phy.DBm(m.pathLoss(t.radio, r, t.channel))
}

// pruneActive drops transmissions that ended before now.
func (m *Medium) pruneActive() {
	now := m.sched.Now()
	kept := m.active[:0]
	for _, t := range m.active {
		if t.end > now {
			kept = append(kept, t)
		}
	}
	m.active = kept
}

// overlap returns the overlap duration of [a1,a2] and [b1,b2].
func overlap(a1, a2, b1, b2 sim.Time) sim.Duration {
	lo, hi := a1, a2
	if b1 > lo {
		lo = b1
	}
	if b2 < hi {
		hi = b2
	}
	if hi <= lo {
		return 0
	}
	return hi.Sub(lo)
}

// begin registers a transmission and notifies listeners and observers.
func (m *Medium) begin(t *transmission) {
	m.pruneActive()
	m.active = append(m.active, t)

	obs := TxObservation{
		Source:  t.radio.name,
		Channel: t.channel,
		StartAt: t.start,
		EndAt:   t.end,
		Power:   t.radio.txPower,
		Frame:   t.frame,
		Noise:   t.noise,
	}
	for _, o := range m.observers {
		o.ObserveTx(obs)
	}
	sim.Emit(m.cfg.Tracer, t.start, t.radio.name, "tx-start", func() []sim.Field {
		return []sim.Field{
			sim.F("ch", t.channel), sim.F("len", len(t.frame.PDU)),
			sim.F("end", t.end), sim.F("noise", t.noise),
		}
	})
	m.ins.onTxBegin(t)

	if t.noise {
		return // jamming carries no lockable preamble
	}
	lockAt := t.start.Add(t.frame.Mode.PreambleAATime())
	for _, r := range m.radios {
		if r == t.radio {
			continue
		}
		r.maybeScheduleLock(t, lockAt)
	}
}

// interferersDuring returns active transmissions (other than want) on ch
// overlapping [from, to]. The returned slice aliases the medium's scratch
// buffer and is only valid until the next call.
func (m *Medium) interferersDuring(want *transmission, ch phy.Channel, from, to sim.Time) []*transmission {
	out := m.scratch[:0]
	for _, t := range m.active {
		if t == want || t.channel != ch {
			continue
		}
		if overlap(from, to, t.start, t.end) > 0 {
			out = append(out, t)
		}
	}
	m.scratch = out
	return out
}

// preambleClean reports whether the preamble+AA of tx is decodable at
// radio r. Two regions behave differently:
//
//   - the acquisition region (the preamble itself): a comparable-power
//     interferer here defeats carrier acquisition deterministically;
//   - the access-address region: the correlator has already acquired the
//     earlier carrier, so a later-starting interferer is ordinary
//     co-channel interference — survival follows the capture model. This
//     is why the slave still locks onto an injected frame whose tail the
//     legitimate master tramples (paper §V-D situation b).
func (m *Medium) preambleClean(t *transmission, r *Radio) bool {
	want := m.rssiAt(t, r)
	preambleEnd := t.start.Add(preambleDuration(t.frame.Mode))
	aaEnd := t.start.Add(t.frame.Mode.PreambleAATime())
	for _, i := range m.interferersDuring(t, t.channel, t.start, aaEnd) {
		if i.radio == r {
			return false // receiver was itself transmitting over the preamble
		}
		sir := float64(want) - float64(m.rssiAt(i, r))
		if overlap(t.start, preambleEnd, i.start, i.end) > 0 {
			if sir < m.cfg.PreambleCaptureMargin {
				return false
			}
			continue
		}
		ov := overlap(preambleEnd, aaEnd, i.start, i.end)
		if ov > 0 && !m.cfg.Capture.Survives(m.rng, sir, ov) {
			return false
		}
	}
	return true
}

// preambleDuration returns the length of the raw preamble (the carrier
// acquisition region) for a PHY mode.
func preambleDuration(mode phy.Mode) sim.Duration {
	switch mode {
	case phy.LE1M, phy.LE2M:
		return sim.Duration(mode.PreambleBytes()*8) * mode.BitDuration()
	default:
		return sim.Microseconds(80)
	}
}

// deliver completes reception of t at r, applying the collision model.
//
// The frame is cloned lazily: the collision and fade decisions only need
// powers and lengths, so the PDU copy happens once the outcome is known —
// and not at all when no consumer (r.OnFrame) is attached. Every RNG draw
// is consumed regardless, keeping the draw sequence — and therefore every
// seeded experiment table — independent of who is listening.
func (m *Medium) deliver(t *transmission, r *Radio) {
	rx := Received{
		Frame:   t.frame, // shared until cloned below
		Channel: t.channel,
		RSSI:    m.rssiAt(t, r),
		StartAt: t.start,
		EndAt:   t.end,
	}
	// Collision survival: each interferer overlapping the locked frame
	// independently threatens it. Overlap is evaluated against the
	// post-preamble body (the preamble was verified clean at lock time).
	bodyStart := t.start.Add(t.frame.Mode.PreambleAATime())
	collided, minSIR := false, math.Inf(1)
	captureLost, noiseLost, fadeLost := false, false, false
	for _, i := range m.interferersDuring(t, t.channel, bodyStart, t.end) {
		i := i
		ov := overlap(bodyStart, t.end, i.start, i.end)
		sir := float64(rx.RSSI) - float64(m.rssiAt(i, r))
		collided = true
		if sir < minSIR {
			minSIR = sir
		}
		if i.noise {
			// Wideband noise has no carrier to lose a phase race against:
			// it erodes demodulation margin directly, so anything below a
			// solid capture margin is corrupted.
			if sir < noiseCaptureThresholdDB {
				rx.Corrupted = true
				noiseLost = true
			}
		} else if !m.cfg.Capture.Survives(m.rng, sir, ov) {
			rx.Corrupted = true
			captureLost = true
		}
		corrupted := rx.Corrupted
		sim.Emit(m.cfg.Tracer, t.end, r.name, "collision", func() []sim.Field {
			return []sim.Field{
				sim.F("with", i.radio.name), sim.F("overlap", ov),
				sim.F("sir", fmt.Sprintf("%.1f", sir)), sim.F("corrupted", corrupted),
			}
		})
	}
	// Sensitivity fade: frames close to the noise floor occasionally drop.
	snr := float64(rx.RSSI) - float64(phy.NoiseFloor)
	if lossP := frameLossFromSNR(snr, len(t.frame.PDU)); lossP > 0 && m.rng.Bool(lossP) {
		rx.Corrupted = true
		fadeLost = true
	}
	if rx.Corrupted {
		// Draw the corruption pattern unconditionally — the RNG stream must
		// advance identically whether or not anyone consumes the frame.
		flips, bits, mask := m.corruptDraws(len(t.frame.PDU))
		if r.OnFrame != nil {
			rx.Frame = m.cloneFrame(t.frame)
			applyCorruption(&rx.Frame, flips, bits, mask)
		}
	} else if r.OnFrame != nil {
		rx.Frame = m.cloneFrame(t.frame)
	}
	sim.Emit(m.cfg.Tracer, t.end, r.name, "rx", func() []sim.Field {
		return []sim.Field{
			sim.F("ch", t.channel), sim.F("len", len(rx.Frame.PDU)),
			sim.F("rssi", rx.RSSI), sim.F("corrupted", rx.Corrupted),
			sim.F("start", t.start),
		}
	})
	if !collided {
		minSIR = 0
	}
	m.ins.onDeliver(r, t, &rx, collided, minSIR)
	if m.deliverObs != nil {
		m.deliverObs(DeliverObservation{
			Radio: r.name, Source: t.radio.name, Channel: t.channel,
			StartAt: t.start, EndAt: t.end, RSSI: rx.RSSI,
			Collided: collided, MinSIRdB: minSIR, Corrupted: rx.Corrupted,
			CaptureLost: captureLost, NoiseLost: noiseLost, FadeLost: fadeLost,
		})
	}
	r.completeRx(rx)
}

// frameLossFromSNR returns a frame-loss probability for a frame of n bytes
// at the given SNR in dB. Above ~12 dB SNR loss is negligible; below the
// sensitivity margin it climbs steeply.
func frameLossFromSNR(snrDB float64, n int) float64 {
	// The receiver sensitivity is defined at ~10 dB SNR for 0.1% BER.
	margin := snrDB - 10
	if margin > 6 {
		return 0
	}
	ber := 0.001 * math.Pow(10, -margin/3)
	if ber > 0.5 {
		ber = 0.5
	}
	bits := float64(8 * (n + 4 + 3)) // AA + PDU + CRC
	loss := 1 - math.Pow(1-ber, bits)
	if loss < 1e-9 {
		return 0
	}
	return loss
}

// corruptDraws consumes the RNG draws for one frame corruption: up to four
// payload bit positions and a CRC perturbation mask. Split from the
// application so deliver can keep the RNG stream identical even when no
// receiver consumes the frame (and the clone is skipped).
func (m *Medium) corruptDraws(pduLen int) (flips int, bits [4]int, mask uint32) {
	if pduLen > 0 {
		flips = 1 + m.rng.Intn(4)
		for i := 0; i < flips; i++ {
			bits[i] = m.rng.Intn(pduLen * 8)
		}
	}
	mask = uint32(1+m.rng.Intn(0xFFFFFF)) & 0xFFFFFF
	return flips, bits, mask
}

// applyCorruption mangles the frame so the upper layer's CRC check fails:
// flips the drawn payload bits and perturbs the transported CRC.
func applyCorruption(f *Frame, flips int, bits [4]int, mask uint32) {
	for i := 0; i < flips; i++ {
		f.PDU[bits[i]/8] ^= 1 << (bits[i] % 8)
	}
	f.CRC ^= mask
}
