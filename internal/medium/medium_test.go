package medium

import (
	"testing"

	"injectable/internal/phy"
	"injectable/internal/sim"
)

// testbed bundles a scheduler + medium with a few radios at given positions.
type testbed struct {
	sched *sim.Scheduler
	med   *Medium
}

func newTestbed(t *testing.T, cfg Config) *testbed {
	t.Helper()
	sched := sim.NewScheduler()
	return &testbed{sched: sched, med: New(sched, sim.NewRNG(42), cfg)}
}

func (tb *testbed) radio(name string, x float64) *Radio {
	return tb.med.NewRadio(RadioConfig{Name: name, Position: phy.Position{X: x}})
}

func dataFrame(aa uint32, n int) Frame {
	return Frame{Mode: phy.LE1M, AccessAddress: aa, PDU: make([]byte, n), CRC: 0xABCDEF}
}

func TestBasicDelivery(t *testing.T) {
	tb := newTestbed(t, Config{})
	tx := tb.radio("tx", 0)
	rx := tb.radio("rx", 2)
	rx.SetChannel(5)
	tx.SetChannel(5)
	rx.SetAccessAddress(0x12345678)
	rx.StartListening()

	var got []Received
	rx.OnFrame = func(r Received) { got = append(got, r) }

	f := dataFrame(0x12345678, 10)
	f.PDU[3] = 0x5A
	tx.Transmit(f)
	tb.sched.Run()

	if len(got) != 1 {
		t.Fatalf("delivered %d frames, want 1", len(got))
	}
	r := got[0]
	if r.Corrupted {
		t.Error("clean frame marked corrupted")
	}
	if r.Frame.PDU[3] != 0x5A {
		t.Error("payload mangled")
	}
	if r.Frame.CRC != 0xABCDEF {
		t.Error("CRC mangled")
	}
	if r.StartAt != 0 {
		t.Errorf("StartAt = %v, want 0", r.StartAt)
	}
	if want := sim.Time(phy.LE1M.AirTime(10)); r.EndAt != want {
		t.Errorf("EndAt = %v, want %v", r.EndAt, want)
	}
	if r.RSSI > -40 || r.RSSI < -60 {
		t.Errorf("RSSI at 2 m = %v", r.RSSI)
	}
}

func TestChannelMismatchNotDelivered(t *testing.T) {
	tb := newTestbed(t, Config{})
	tx := tb.radio("tx", 0)
	rx := tb.radio("rx", 2)
	tx.SetChannel(5)
	rx.SetChannel(6)
	rx.SetPromiscuous(true)
	rx.StartListening()
	n := 0
	rx.OnFrame = func(Received) { n++ }
	tx.Transmit(dataFrame(1, 5))
	tb.sched.Run()
	if n != 0 {
		t.Fatal("frame crossed channels")
	}
}

func TestAccessAddressFilter(t *testing.T) {
	tb := newTestbed(t, Config{})
	tx := tb.radio("tx", 0)
	rx := tb.radio("rx", 2)
	rx.SetAccessAddress(0xAAAAAAAA)
	rx.StartListening()
	n := 0
	rx.OnFrame = func(Received) { n++ }
	tx.Transmit(dataFrame(0xBBBBBBBB, 5))
	tb.sched.Run()
	if n != 0 {
		t.Fatal("AA filter ignored")
	}
}

func TestPromiscuousReceivesAnyAA(t *testing.T) {
	tb := newTestbed(t, Config{})
	tx := tb.radio("tx", 0)
	rx := tb.radio("rx", 2)
	rx.SetPromiscuous(true)
	rx.StartListening()
	n := 0
	rx.OnFrame = func(Received) { n++ }
	tx.Transmit(dataFrame(0xBBBBBBBB, 5))
	tb.sched.Run()
	if n != 1 {
		t.Fatal("promiscuous radio missed frame")
	}
}

func TestNotListeningMissesFrame(t *testing.T) {
	tb := newTestbed(t, Config{})
	tx := tb.radio("tx", 0)
	rx := tb.radio("rx", 2)
	rx.SetAccessAddress(1)
	n := 0
	rx.OnFrame = func(Received) { n++ }
	tx.Transmit(dataFrame(1, 5))
	tb.sched.Run()
	if n != 0 {
		t.Fatal("idle radio received")
	}
}

func TestLateListenerMissesPreamble(t *testing.T) {
	// A radio that starts listening after the frame's preamble has passed
	// cannot lock — the core reason injecting before the receive window
	// opens fails.
	tb := newTestbed(t, Config{})
	tx := tb.radio("tx", 0)
	rx := tb.radio("rx", 2)
	rx.SetAccessAddress(1)
	n := 0
	rx.OnFrame = func(Received) { n++ }
	tx.Transmit(dataFrame(1, 20))
	tb.sched.After(10*sim.Microsecond, "late-listen", func() { rx.StartListening() })
	tb.sched.Run()
	if n != 0 {
		t.Fatal("late listener locked mid-frame")
	}
}

func TestOutOfRangeNotDelivered(t *testing.T) {
	tb := newTestbed(t, Config{})
	tx := tb.radio("tx", 0)
	rx := tb.radio("rx", 100000) // 100 km
	rx.SetAccessAddress(1)
	rx.StartListening()
	n := 0
	rx.OnFrame = func(Received) { n++ }
	tx.Transmit(dataFrame(1, 5))
	tb.sched.Run()
	if n != 0 {
		t.Fatal("frame received far beyond sensitivity")
	}
}

func TestStopListeningCancelsLockAttempts(t *testing.T) {
	tb := newTestbed(t, Config{})
	tx := tb.radio("tx", 0)
	rx := tb.radio("rx", 2)
	rx.SetAccessAddress(1)
	rx.StartListening()
	n := 0
	rx.OnFrame = func(Received) { n++ }
	tx.Transmit(dataFrame(1, 20))
	// Stop before the preamble+AA completes (40 µs on LE 1M).
	tb.sched.After(20*sim.Microsecond, "stop", func() { rx.StopListening() })
	tb.sched.Run()
	if n != 0 {
		t.Fatal("stopped radio still locked")
	}
}

func TestLockedReceptionSurvivesStopListening(t *testing.T) {
	// Once locked, the frame completes even if the window closes — the
	// spec's window widening constrains the packet *start* only.
	tb := newTestbed(t, Config{})
	tx := tb.radio("tx", 0)
	rx := tb.radio("rx", 2)
	rx.SetAccessAddress(1)
	rx.StartListening()
	n := 0
	rx.OnFrame = func(Received) { n++ }
	tx.Transmit(dataFrame(1, 20))
	tb.sched.After(60*sim.Microsecond, "stop", func() { rx.StopListening() }) // after lock at 40 µs
	tb.sched.Run()
	if n != 1 {
		t.Fatal("locked reception aborted by StopListening")
	}
}

func TestFirstFrameWinsLock(t *testing.T) {
	// Two frames with the same AA: the receiver locks the first and the
	// second only interferes. This is the InjectaBLE race itself.
	tb := newTestbed(t, Config{})
	attacker := tb.radio("attacker", 1)
	master := tb.radio("master", 2)
	slave := tb.radio("slave", 0)
	slave.SetAccessAddress(7)
	slave.StartListening()
	var got []Received
	slave.OnFrame = func(r Received) { got = append(got, r) }

	af := dataFrame(7, 10)
	af.PDU[0] = 0xA7
	mf := dataFrame(7, 10)
	mf.PDU[0] = 0x33
	attacker.Transmit(af)
	tb.sched.After(50*sim.Microsecond, "master-tx", func() { master.Transmit(mf) })
	tb.sched.Run()

	if len(got) != 1 {
		t.Fatalf("delivered %d frames, want 1 (the first lock)", len(got))
	}
	if got[0].Frame.PDU[0] != 0xA7 && !got[0].Corrupted {
		t.Fatalf("locked wrong frame: % x", got[0].Frame.PDU)
	}
}

func TestCollisionWithPessimisticModelCorrupts(t *testing.T) {
	tb := newTestbed(t, Config{Capture: Pessimistic{}})
	attacker := tb.radio("attacker", 1)
	master := tb.radio("master", 2)
	slave := tb.radio("slave", 0)
	slave.SetAccessAddress(7)
	slave.StartListening()
	var got []Received
	slave.OnFrame = func(r Received) { got = append(got, r) }

	attacker.Transmit(dataFrame(7, 14)) // 176 µs on air
	tb.sched.After(100*sim.Microsecond, "master-tx", func() { master.Transmit(dataFrame(7, 14)) })
	tb.sched.Run()

	if len(got) != 1 {
		t.Fatalf("delivered %d frames", len(got))
	}
	if !got[0].Corrupted {
		t.Fatal("pessimistic model let a collision survive")
	}
	if got[0].Frame.CRC == 0xABCDEF {
		t.Fatal("corrupted frame kept its CRC")
	}
}

func TestNoCollisionWhenFrameEndsFirst(t *testing.T) {
	// Situation (a) of Fig. 5: injected frame fully transmitted before the
	// legitimate one starts — no corruption even pessimistically.
	tb := newTestbed(t, Config{Capture: Pessimistic{}})
	attacker := tb.radio("attacker", 1)
	master := tb.radio("master", 2)
	slave := tb.radio("slave", 0)
	slave.SetAccessAddress(7)
	slave.StartListening()
	var got []Received
	slave.OnFrame = func(r Received) { got = append(got, r) }

	attacker.Transmit(dataFrame(7, 2)) // 80 µs
	tb.sched.After(90*sim.Microsecond, "master-tx", func() { master.Transmit(dataFrame(7, 2)) })
	tb.sched.Run()

	if len(got) == 0 || got[0].Corrupted {
		t.Fatal("non-overlapping frames corrupted")
	}
}

func TestStrongSignalCapturesCollision(t *testing.T) {
	// With the attacker 20 dB stronger at the receiver, PhaseCapture should
	// survive nearly all collisions.
	tb := newTestbed(t, Config{})
	attacker := tb.radio("attacker", 0.3)
	master := tb.radio("master", 3)
	slave := tb.radio("slave", 0)
	slave.SetAccessAddress(7)

	wins := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		done := false
		slave.OnFrame = func(r Received) {
			if !r.Corrupted {
				wins++
			}
			done = true
		}
		slave.SetChannel(phy.Channel(i % 37))
		attacker.SetChannel(phy.Channel(i % 37))
		master.SetChannel(phy.Channel(i % 37))
		slave.StartListening()
		attacker.Transmit(dataFrame(7, 14))
		tb.sched.After(60*sim.Microsecond, "m", func() { master.Transmit(dataFrame(7, 14)) })
		tb.sched.Run()
		if !done {
			t.Fatal("no delivery")
		}
		slave.StopListening()
	}
	if wins < 90 {
		t.Fatalf("strong attacker survived only %d/%d collisions", wins, trials)
	}
}

func TestWeakSignalLosesCollision(t *testing.T) {
	// Attacker 10× further than the master: SIR ≈ −20 dB, survival rare.
	tb := newTestbed(t, Config{})
	attacker := tb.radio("attacker", 20)
	master := tb.radio("master", 2)
	slave := tb.radio("slave", 0)
	slave.SetAccessAddress(7)

	wins := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		slave.OnFrame = func(r Received) {
			if !r.Corrupted {
				wins++
			}
		}
		slave.StartListening()
		attacker.Transmit(dataFrame(7, 14))
		tb.sched.After(60*sim.Microsecond, "m", func() { master.Transmit(dataFrame(7, 14)) })
		tb.sched.Run()
		slave.StopListening()
	}
	if wins > 25 {
		t.Fatalf("weak attacker survived %d/%d collisions", wins, trials)
	}
}

func TestJammingCorruptsFrame(t *testing.T) {
	tb := newTestbed(t, Config{Capture: Pessimistic{}})
	tx := tb.radio("tx", 0)
	jammer := tb.radio("jammer", 1)
	rx := tb.radio("rx", 2)
	rx.SetAccessAddress(1)
	rx.StartListening()
	var got []Received
	rx.OnFrame = func(r Received) { got = append(got, r) }
	tx.Transmit(dataFrame(1, 14))
	tb.sched.After(100*sim.Microsecond, "jam", func() { jammer.TransmitNoise(200 * sim.Microsecond) })
	tb.sched.Run()
	if len(got) != 1 || !got[0].Corrupted {
		t.Fatalf("jamming did not corrupt: %+v", got)
	}
}

func TestJammedPreambleDefeatsLock(t *testing.T) {
	tb := newTestbed(t, Config{})
	tx := tb.radio("tx", 2)
	jammer := tb.radio("jammer", 0.5) // much closer to rx → stronger
	rx := tb.radio("rx", 0)
	rx.SetAccessAddress(1)
	rx.StartListening()
	n := 0
	rx.OnFrame = func(Received) { n++ }
	jammer.TransmitNoise(300 * sim.Microsecond)
	tb.sched.After(10*sim.Microsecond, "tx", func() { tx.Transmit(dataFrame(1, 14)) })
	tb.sched.Run()
	if n != 0 {
		t.Fatal("locked despite jammed preamble")
	}
}

func TestWallAttenuationAffectsCollisions(t *testing.T) {
	wall := phy.Wall{A: phy.Position{X: 3, Y: -10}, B: phy.Position{X: 3, Y: 10}, Loss: 10}
	tb := newTestbed(t, Config{PathLoss: &phy.LogDistance{Walls: []phy.Wall{wall}}})
	attacker := tb.radio("attacker", 4) // behind the wall
	master := tb.radio("master", 2)
	slave := tb.radio("slave", 0)
	slave.SetAccessAddress(7)

	wins := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		slave.OnFrame = func(r Received) {
			if !r.Corrupted {
				wins++
			}
		}
		slave.StartListening()
		attacker.Transmit(dataFrame(7, 14))
		tb.sched.After(60*sim.Microsecond, "m", func() { master.Transmit(dataFrame(7, 14)) })
		tb.sched.Run()
		slave.StopListening()
	}
	// SIR ≈ −6 −10 = −16 dB: survival possible but rare.
	if wins > 60 {
		t.Fatalf("wall had no effect: %d/%d wins", wins, trials)
	}
	if wins == 0 {
		t.Fatal("injection impossible through wall — paper says it succeeds eventually")
	}
}

func TestTransmitPanicsWhileTransmitting(t *testing.T) {
	tb := newTestbed(t, Config{})
	tx := tb.radio("tx", 0)
	tx.Transmit(dataFrame(1, 5))
	defer func() {
		if recover() == nil {
			t.Error("no panic on double transmit")
		}
	}()
	tx.Transmit(dataFrame(1, 5))
}

func TestOnTxDoneFires(t *testing.T) {
	tb := newTestbed(t, Config{})
	tx := tb.radio("tx", 0)
	done := false
	tx.OnTxDone = func() { done = true }
	tx.Transmit(dataFrame(1, 5))
	if tx.Transmitting() != true {
		t.Error("not transmitting after Transmit")
	}
	tb.sched.Run()
	if !done {
		t.Fatal("OnTxDone not called")
	}
	if tx.Transmitting() {
		t.Error("still transmitting after end")
	}
}

func TestObserverSeesAllTraffic(t *testing.T) {
	tb := newTestbed(t, Config{})
	tx := tb.radio("tx", 0)
	jam := tb.radio("jam", 1)
	var seen []TxObservation
	tb.med.AddObserver(observerFunc(func(o TxObservation) { seen = append(seen, o) }))
	tx.Transmit(dataFrame(1, 5))
	tb.sched.Run()
	jam.TransmitNoise(50 * sim.Microsecond)
	tb.sched.Run()
	if len(seen) != 2 {
		t.Fatalf("observer saw %d transmissions, want 2", len(seen))
	}
	if seen[0].Source != "tx" || seen[1].Source != "jam" || !seen[1].Noise {
		t.Fatalf("observations wrong: %+v", seen)
	}
}

type observerFunc func(TxObservation)

func (f observerFunc) ObserveTx(o TxObservation) { f(o) }

func TestFrameCloneIsDeep(t *testing.T) {
	f := dataFrame(1, 4)
	c := f.Clone()
	c.PDU[0] = 0xFF
	if f.PDU[0] == 0xFF {
		t.Fatal("Clone shares PDU backing array")
	}
}

func TestRetuneAbortsReception(t *testing.T) {
	tb := newTestbed(t, Config{})
	tx := tb.radio("tx", 0)
	rx := tb.radio("rx", 2)
	rx.SetAccessAddress(1)
	rx.StartListening()
	n := 0
	rx.OnFrame = func(Received) { n++ }
	tx.Transmit(dataFrame(1, 20))
	tb.sched.After(60*sim.Microsecond, "hop", func() { rx.SetChannel(9) }) // after lock
	tb.sched.Run()
	if n != 0 {
		t.Fatal("reception survived retune")
	}
}
