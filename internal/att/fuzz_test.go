package att

import (
	"testing"
)

// The ATT server and client parse peer-controlled bytes; neither may panic
// on any input. The fuzz input is a stream of length-prefixed PDUs so the
// engines can explore multi-request state (MTU exchange, queued writes).

// chunks splits a fuzz input into length-prefixed PDUs (max 32 bytes each,
// the interesting ATT sizes all fit).
func chunks(b []byte) [][]byte {
	var out [][]byte
	for len(b) > 0 && len(out) < 16 {
		n := int(b[0] & 0x1F)
		b = b[1:]
		if n > len(b) {
			n = len(b)
		}
		out = append(out, b[:n])
		b = b[n:]
	}
	return out
}

func fuzzDB() *DB {
	db := NewDB()
	db.Add(UUID16(0x2800), []byte{0x00, 0x18}, ReadOnly)
	db.Add(UUID16(0x2A00), []byte("fuzz"), ReadWrite)
	db.Add(UUID16(0x2A01), []byte{1, 2}, Permissions{Read: true, ReadRequiresEncryption: true})
	return db
}

func FuzzServerHandlePDU(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, byte(OpMTUReq), 64})                     // truncated MTU request
	f.Add([]byte{3, byte(OpReadReq), 2, 0})                  // read handle 2
	f.Add([]byte{7, byte(OpWriteReq), 2, 0, 'a', 'b', 'c'})  // write handle 2
	f.Add([]byte{5, byte(OpFindInfoReq), 1, 0, 0xFF, 0xFF})  // find info sweep
	f.Add([]byte{7, byte(OpReadByTypeReq), 1, 0, 0xFF, 0xFF}) // truncated read-by-type
	f.Fuzz(func(t *testing.T, b []byte) {
		s := NewServer(fuzzDB(), func(rsp []byte) {
			if len(rsp) == 0 {
				t.Fatal("server sent an empty PDU")
			}
		})
		for _, pdu := range chunks(b) {
			s.HandlePDU(pdu)
		}
	})
}

func FuzzClientHandlePDU(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, byte(OpMTURsp), 64, 0})
	f.Add([]byte{4, byte(OpReadRsp), 'o', 'k', 0})
	f.Add([]byte{5, byte(OpError), byte(OpReadReq), 2, 0, 0x0A})
	f.Add([]byte{4, byte(OpNotification), 2, 0, 7})
	f.Add([]byte{4, byte(OpIndication), 2, 0, 7})
	f.Fuzz(func(t *testing.T, b []byte) {
		c := NewClient(func([]byte) {})
		c.OnNotification = func(handle uint16, value []byte) {}
		c.OnIndication = func(handle uint16, value []byte) {}
		// Cycle through the request kinds so responses land on a pending
		// transaction of every shape.
		arm := []func(){
			func() { c.Read(2, func(Response) {}) },
			func() { c.Write(2, []byte{1}, func(Response) {}) },
			func() { c.ExchangeMTU(64, func(uint16, error) {}) },
			func() { c.FindInformation(1, 0xFFFF, func([]FoundInfo, error) {}) },
			func() { c.ReadByType(1, 0xFFFF, UUID16(0x2A00), func([]TypeValue, error) {}) },
			func() { c.ReadByGroupType(1, 0xFFFF, UUID16(0x2800), func([]GroupValue, error) {}) },
		}
		for i, pdu := range chunks(b) {
			if !c.Busy() {
				arm[i%len(arm)]()
			}
			c.HandlePDU(pdu)
		}
	})
}
