package att

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

// wire connects a Server and Client back-to-back, delivering synchronously.
func wire() (*Server, *Client, *DB) {
	db := NewDB()
	var srv *Server
	var cli *Client
	srv = NewServer(db, func(b []byte) { cli.HandlePDU(b) })
	cli = NewClient(func(b []byte) { srv.HandlePDU(b) })
	return srv, cli, db
}

func TestReadRequest(t *testing.T) {
	_, cli, db := wire()
	a := db.Add(UUIDDeviceName, []byte("bulb"), ReadOnly)
	var got Response
	cli.Read(a.Handle, func(r Response) { got = r })
	if got.Err != nil {
		t.Fatal(got.Err)
	}
	if string(got.Value) != "bulb" {
		t.Fatalf("value = %q", got.Value)
	}
}

func TestReadInvalidHandle(t *testing.T) {
	_, cli, _ := wire()
	var got Response
	cli.Read(0x1234, func(r Response) { got = r })
	var attErr *Error
	if !errors.As(got.Err, &attErr) || attErr.Code != ErrInvalidHandle {
		t.Fatalf("err = %v", got.Err)
	}
	if attErr.Handle != 0x1234 || attErr.Request != OpReadReq {
		t.Fatalf("error detail = %+v", attErr)
	}
	if attErr.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestReadNotPermitted(t *testing.T) {
	_, cli, db := wire()
	a := db.Add(UUID16(0xFF01), []byte{1}, Permissions{Write: true})
	var got Response
	cli.Read(a.Handle, func(r Response) { got = r })
	var attErr *Error
	if !errors.As(got.Err, &attErr) || attErr.Code != ErrReadNotPermitted {
		t.Fatalf("err = %v", got.Err)
	}
}

func TestDynamicRead(t *testing.T) {
	_, cli, db := wire()
	n := 0
	a := db.Add(UUID16(0xFF02), nil, ReadOnly)
	a.OnRead = func() []byte { n++; return []byte{byte(n)} }
	var got Response
	cli.Read(a.Handle, func(r Response) { got = r })
	cli.Read(a.Handle, func(r Response) { got = r })
	if got.Value[0] != 2 {
		t.Fatalf("dynamic read = %v", got.Value)
	}
}

func TestWriteRequest(t *testing.T) {
	srv, cli, db := wire()
	var hookValue []byte
	a := db.Add(UUID16(0xFF01), []byte{0}, ReadWrite)
	a.OnWrite = func(v []byte) { hookValue = append([]byte(nil), v...) }
	var srvWrites int
	srv.OnWrite = func(handle uint16, value []byte) { srvWrites++ }

	done := false
	cli.Write(a.Handle, []byte{0xAB, 0xCD}, func(r Response) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		done = true
	})
	if !done {
		t.Fatal("no write response")
	}
	if !bytes.Equal(a.Value, []byte{0xAB, 0xCD}) || !bytes.Equal(hookValue, a.Value) {
		t.Fatalf("value = % x", a.Value)
	}
	if srvWrites != 1 {
		t.Fatal("server OnWrite not called")
	}
}

func TestWriteCommandNoResponse(t *testing.T) {
	_, cli, db := wire()
	a := db.Add(UUID16(0xFF01), []byte{0}, ReadWrite)
	cli.WriteCommand(a.Handle, []byte{0x77})
	if a.Value[0] != 0x77 {
		t.Fatal("write command not applied")
	}
	// Write command to a bad handle must not produce an error response
	// (nothing to deliver it to); simply ignored.
	cli.WriteCommand(0x9999, []byte{1})
}

func TestWriteNotPermitted(t *testing.T) {
	_, cli, db := wire()
	a := db.Add(UUIDDeviceName, []byte("x"), ReadOnly)
	var got Response
	cli.Write(a.Handle, []byte{1}, func(r Response) { got = r })
	var attErr *Error
	if !errors.As(got.Err, &attErr) || attErr.Code != ErrWriteNotPermitted {
		t.Fatalf("err = %v", got.Err)
	}
}

func TestEncryptionGate(t *testing.T) {
	srv, cli, db := wire()
	a := db.Add(UUID16(0xFF10), []byte{9},
		Permissions{Read: true, Write: true, ReadRequiresEncryption: true, WriteRequiresEncryption: true})
	encrypted := false
	srv.Encrypted = func() bool { return encrypted }

	var got Response
	cli.Read(a.Handle, func(r Response) { got = r })
	var attErr *Error
	if !errors.As(got.Err, &attErr) || attErr.Code != ErrInsufficientEncryption {
		t.Fatalf("plaintext read: %v", got.Err)
	}
	cli.Write(a.Handle, []byte{1}, func(r Response) { got = r })
	if !errors.As(got.Err, &attErr) || attErr.Code != ErrInsufficientEncryption {
		t.Fatalf("plaintext write: %v", got.Err)
	}

	encrypted = true
	cli.Read(a.Handle, func(r Response) { got = r })
	if got.Err != nil || got.Value[0] != 9 {
		t.Fatalf("encrypted read: %+v", got)
	}
}

func TestMTUExchange(t *testing.T) {
	srv, cli, _ := wire()
	var mtu uint16
	cli.ExchangeMTU(185, func(m uint16, err error) {
		if err != nil {
			t.Fatal(err)
		}
		mtu = m
	})
	if mtu != 247 {
		t.Fatalf("server MTU = %d", mtu)
	}
	if srv.MTU() != 185 {
		t.Fatalf("effective MTU = %d, want min(185,247)", srv.MTU())
	}
}

func TestReadTruncatedToMTU(t *testing.T) {
	_, cli, db := wire()
	long := make([]byte, 100)
	a := db.Add(UUID16(0xFF01), long, ReadOnly)
	var got Response
	cli.Read(a.Handle, func(r Response) { got = r })
	if len(got.Value) != DefaultMTU-1 {
		t.Fatalf("read %d bytes, want %d (MTU-1)", len(got.Value), DefaultMTU-1)
	}
}

func TestFindInformation(t *testing.T) {
	_, cli, db := wire()
	db.Add(UUIDPrimaryService, []byte{0x00, 0x18}, ReadOnly)
	db.Add(UUIDCharacteristic, []byte{1}, ReadOnly)
	db.Add(UUIDDeviceName, []byte("d"), ReadOnly)
	var got []FoundInfo
	cli.FindInformation(1, 0xFFFF, func(fi []FoundInfo, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = fi
	})
	if len(got) != 3 {
		t.Fatalf("found %d attributes", len(got))
	}
	if got[0].Handle != 1 || got[0].Type != UUIDPrimaryService {
		t.Fatalf("first = %+v", got[0])
	}
}

func TestFindInformationEmpty(t *testing.T) {
	_, cli, db := wire()
	db.Add(UUIDPrimaryService, []byte{1}, ReadOnly)
	var gotErr error
	cli.FindInformation(10, 20, func(fi []FoundInfo, err error) { gotErr = err })
	var attErr *Error
	if !errors.As(gotErr, &attErr) || attErr.Code != ErrAttributeNotFound {
		t.Fatalf("err = %v", gotErr)
	}
}

func TestReadByType(t *testing.T) {
	_, cli, db := wire()
	db.Add(UUIDPrimaryService, []byte{0x00, 0x18}, ReadOnly)
	db.Add(UUIDDeviceName, []byte("ab"), ReadOnly)
	db.Add(UUID16(0xFF01), []byte{9}, ReadOnly)
	db.Add(UUIDDeviceName, []byte("cd"), ReadOnly)
	var got []TypeValue
	cli.ReadByType(1, 0xFFFF, UUIDDeviceName, func(tv []TypeValue, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = tv
	})
	if len(got) != 2 || string(got[0].Value) != "ab" || string(got[1].Value) != "cd" {
		t.Fatalf("got %+v", got)
	}
}

func TestReadByGroupType(t *testing.T) {
	_, cli, db := wire()
	db.Add(UUIDPrimaryService, []byte{0x00, 0x18}, ReadOnly) // h1: GAP
	db.Add(UUIDCharacteristic, []byte{1}, ReadOnly)          // h2
	db.Add(UUIDDeviceName, []byte("d"), ReadOnly)            // h3
	db.Add(UUIDPrimaryService, []byte{0x0F, 0x18}, ReadOnly) // h4: battery
	db.Add(UUIDCharacteristic, []byte{2}, ReadOnly)          // h5
	var got []GroupValue
	cli.ReadByGroupType(1, 0xFFFF, UUIDPrimaryService, func(gv []GroupValue, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = gv
	})
	if len(got) != 2 {
		t.Fatalf("found %d groups", len(got))
	}
	if got[0].Start != 1 || got[0].End != 3 {
		t.Fatalf("group 0 = %+v", got[0])
	}
	if got[1].Start != 4 || got[1].End != 5 {
		t.Fatalf("group 1 = %+v", got[1])
	}
}

func TestNotificationDelivery(t *testing.T) {
	srv, cli, db := wire()
	a := db.Add(UUID16(0xFF05), []byte{0}, ReadOnly)
	var gotHandle uint16
	var gotValue []byte
	cli.OnNotification = func(h uint16, v []byte) { gotHandle, gotValue = h, v }
	srv.Notify(a.Handle, []byte{0xDE, 0xAD})
	if gotHandle != a.Handle || !bytes.Equal(gotValue, []byte{0xDE, 0xAD}) {
		t.Fatalf("notification %#x % x", gotHandle, gotValue)
	}
}

func TestIndicationConfirmed(t *testing.T) {
	srv, cli, db := wire()
	a := db.Add(UUID16(0xFF05), []byte{0}, ReadOnly)
	got := false
	cli.OnIndication = func(h uint16, v []byte) { got = true }
	srv.Indicate(a.Handle, []byte{1})
	if !got {
		t.Fatal("indication not delivered")
	}
}

func TestRequestQueueing(t *testing.T) {
	// Issue several requests back-to-back through a deferred transport:
	// they must all complete, in order.
	db := NewDB()
	var srv *Server
	var cli *Client
	var toServer, toClient [][]byte
	srv = NewServer(db, func(b []byte) { toClient = append(toClient, append([]byte(nil), b...)) })
	cli = NewClient(func(b []byte) { toServer = append(toServer, append([]byte(nil), b...)) })
	a := db.Add(UUID16(0xFF01), []byte{7}, ReadWrite)

	var results []Response
	cli.Read(a.Handle, func(r Response) { results = append(results, r) })
	cli.Write(a.Handle, []byte{8}, func(r Response) { results = append(results, r) })
	cli.Read(a.Handle, func(r Response) { results = append(results, r) })

	for len(toServer) > 0 || len(toClient) > 0 {
		if len(toServer) > 0 {
			msg := toServer[0]
			toServer = toServer[1:]
			srv.HandlePDU(msg)
		}
		if len(toClient) > 0 {
			msg := toClient[0]
			toClient = toClient[1:]
			cli.HandlePDU(msg)
		}
	}
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	if results[0].Value[0] != 7 {
		t.Fatal("first read wrong")
	}
	if results[2].Value[0] != 8 {
		t.Fatal("read after write wrong")
	}
}

func TestMalformedPDUs(t *testing.T) {
	srv, _, db := wire()
	db.Add(UUID16(0xFF01), []byte{1}, ReadWrite)
	// None of these may panic.
	srv.HandlePDU(nil)
	srv.HandlePDU([]byte{byte(OpReadReq)})
	srv.HandlePDU([]byte{byte(OpReadReq), 0x01})
	srv.HandlePDU([]byte{byte(OpWriteReq)})
	srv.HandlePDU([]byte{byte(OpFindInfoReq), 1, 2})
	srv.HandlePDU([]byte{byte(OpReadByTypeReq), 1})
	srv.HandlePDU([]byte{byte(OpReadByGroupReq), 1, 0, 2})
	srv.HandlePDU([]byte{0xEE})
}

func TestMalformedClientPDUs(t *testing.T) {
	_, cli, _ := wire()
	cli.HandlePDU(nil)
	cli.HandlePDU([]byte{byte(OpNotification)})
	cli.HandlePDU([]byte{byte(OpReadRsp), 1, 2, 3}) // unsolicited
}

func TestUUIDRoundTripProperty(t *testing.T) {
	f := func(v uint16, raw [16]byte) bool {
		u16 := UUID16(v)
		b16, err := UUIDFromBytes(u16.Bytes())
		if err != nil || b16 != u16 || !b16.Is16() || b16.Uint16() != v {
			return false
		}
		u128 := UUID128(raw)
		b128, err := UUIDFromBytes(u128.Bytes())
		return err == nil && b128 == u128 && !b128.Is16()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUUIDFromBytesBadLength(t *testing.T) {
	if _, err := UUIDFromBytes([]byte{1, 2, 3}); err == nil {
		t.Fatal("3-byte UUID accepted")
	}
}

func TestDBFind(t *testing.T) {
	db := NewDB()
	a := db.Add(UUID16(1), nil, ReadOnly)
	b := db.Add(UUID16(2), nil, ReadOnly)
	if db.Find(a.Handle) != a || db.Find(b.Handle) != b {
		t.Fatal("Find broken")
	}
	if db.Find(99) != nil {
		t.Fatal("phantom attribute")
	}
	if db.Len() != 2 || len(db.All()) != 2 {
		t.Fatal("Len/All broken")
	}
}

func TestOpcodeAndErrorStrings(t *testing.T) {
	if OpReadReq.String() != "Read Request" || OpWriteCmd.String() != "Write Command" {
		t.Fatal("opcode strings")
	}
	if Opcode(0xEF).String() == "" || ErrorCode(0xEF).String() == "" {
		t.Fatal("unknown strings empty")
	}
	if ErrInsufficientEncryption.String() != "insufficient encryption" {
		t.Fatal("error string")
	}
}
