package att

import (
	"errors"
	"fmt"
)

// Response carries the outcome of one ATT request.
type Response struct {
	Value []byte
	Err   error
}

// FoundInfo is one entry of a Find Information Response.
type FoundInfo struct {
	Handle uint16
	Type   UUID
}

// TypeValue is one entry of a Read By Type Response.
type TypeValue struct {
	Handle uint16
	Value  []byte
}

// GroupValue is one entry of a Read By Group Type Response.
type GroupValue struct {
	Start uint16
	End   uint16
	Value []byte
}

// ErrTimeout reports an expired ATT transaction (the spec's 30 s
// transaction timeout): the server — or whoever impersonates it — never
// answered.
var ErrTimeout = errors.New("att: transaction timeout")

// Client issues ATT requests and routes responses. ATT allows one
// outstanding request at a time; further requests queue.
type Client struct {
	send func([]byte)

	queue         [][]byte
	queueHandlers []func(op Opcode, body []byte)
	pending       func(op Opcode, body []byte)

	armTimer    func(expire func()) (cancel func())
	cancelTimer func()

	// OnNotification receives server-initiated handle value notifications.
	OnNotification func(handle uint16, value []byte)
	// OnIndication receives indications (the client auto-confirms).
	OnIndication func(handle uint16, value []byte)
}

// NewClient builds a client transmitting via send.
func NewClient(send func([]byte)) *Client { return &Client{send: send} }

// SetTransactionTimer installs the transaction-timeout mechanism: arm is
// called when a request goes out and must schedule expire (returning a
// cancel function). On expiry the outstanding request fails with
// ErrTimeout and queued requests proceed.
func (c *Client) SetTransactionTimer(arm func(expire func()) (cancel func())) {
	c.armTimer = arm
}

// startTimer arms the transaction timer for the in-flight request.
func (c *Client) startTimer() {
	if c.armTimer == nil {
		return
	}
	c.cancelTimer = c.armTimer(func() {
		h := c.pending
		if h == nil {
			return
		}
		c.pending = nil
		c.cancelTimer = nil
		h(0, nil) // op 0 signals timeout to decodeError
		c.drainQueue()
	})
}

// stopTimer cancels the armed transaction timer.
func (c *Client) stopTimer() {
	if c.cancelTimer != nil {
		c.cancelTimer()
		c.cancelTimer = nil
	}
}

// Busy reports whether a request is outstanding.
func (c *Client) Busy() bool { return c.pending != nil }

// request enqueues a request PDU with its response continuation.
func (c *Client) request(req []byte, handle func(op Opcode, body []byte)) {
	if c.pending != nil {
		c.queue = append(c.queue, req)
		c.queueHandlers = append(c.queueHandlers, handle)
		return
	}
	c.pending = handle
	c.startTimer()
	c.send(req)
}

// Read issues a Read Request.
func (c *Client) Read(handle uint16, cb func(Response)) {
	req := []byte{byte(OpReadReq), byte(handle), byte(handle >> 8)}
	c.request(req, func(op Opcode, body []byte) {
		switch op {
		case OpReadRsp:
			cb(Response{Value: body})
		default:
			cb(Response{Err: decodeError(OpReadReq, op, body)})
		}
	})
}

// Write issues a Write Request (with response).
func (c *Client) Write(handle uint16, value []byte, cb func(Response)) {
	req := append([]byte{byte(OpWriteReq), byte(handle), byte(handle >> 8)}, value...)
	c.request(req, func(op Opcode, body []byte) {
		switch op {
		case OpWriteRsp:
			cb(Response{})
		default:
			cb(Response{Err: decodeError(OpWriteReq, op, body)})
		}
	})
}

// WriteCommand issues a Write Command (no response, no queueing needed).
func (c *Client) WriteCommand(handle uint16, value []byte) {
	c.send(append([]byte{byte(OpWriteCmd), byte(handle), byte(handle >> 8)}, value...))
}

// ExchangeMTU negotiates the ATT_MTU.
func (c *Client) ExchangeMTU(clientMTU uint16, cb func(serverMTU uint16, err error)) {
	req := []byte{byte(OpMTUReq), byte(clientMTU), byte(clientMTU >> 8)}
	c.request(req, func(op Opcode, body []byte) {
		if op != OpMTURsp || len(body) != 2 {
			cb(0, decodeError(OpMTUReq, op, body))
			return
		}
		cb(uint16(body[0])|uint16(body[1])<<8, nil)
	})
}

// FindInformation lists attribute handles and types in a range.
func (c *Client) FindInformation(start, end uint16, cb func([]FoundInfo, error)) {
	req := []byte{byte(OpFindInfoReq), byte(start), byte(start >> 8), byte(end), byte(end >> 8)}
	c.request(req, func(op Opcode, body []byte) {
		if op != OpFindInfoRsp || len(body) < 1 {
			cb(nil, decodeError(OpFindInfoReq, op, body))
			return
		}
		format := body[0]
		entrySize := 2 + 2
		if format == 0x02 {
			entrySize = 2 + 16
		}
		var out []FoundInfo
		for off := 1; off+entrySize <= len(body); off += entrySize {
			h := uint16(body[off]) | uint16(body[off+1])<<8
			u, err := UUIDFromBytes(body[off+2 : off+entrySize])
			if err != nil {
				cb(nil, err)
				return
			}
			out = append(out, FoundInfo{Handle: h, Type: u})
		}
		cb(out, nil)
	})
}

// ReadByType reads all attributes of a type in a handle range.
func (c *Client) ReadByType(start, end uint16, typ UUID, cb func([]TypeValue, error)) {
	req := []byte{byte(OpReadByTypeReq), byte(start), byte(start >> 8), byte(end), byte(end >> 8)}
	req = append(req, typ.Bytes()...)
	c.request(req, func(op Opcode, body []byte) {
		if op != OpReadByTypeRsp || len(body) < 1 {
			cb(nil, decodeError(OpReadByTypeReq, op, body))
			return
		}
		entrySize := int(body[0])
		if entrySize < 2 {
			cb(nil, fmt.Errorf("att: bad entry size %d", entrySize))
			return
		}
		var out []TypeValue
		for off := 1; off+entrySize <= len(body); off += entrySize {
			out = append(out, TypeValue{
				Handle: uint16(body[off]) | uint16(body[off+1])<<8,
				Value:  append([]byte(nil), body[off+2:off+entrySize]...),
			})
		}
		cb(out, nil)
	})
}

// ReadByGroupType reads service groups (primary service discovery).
func (c *Client) ReadByGroupType(start, end uint16, typ UUID, cb func([]GroupValue, error)) {
	req := []byte{byte(OpReadByGroupReq), byte(start), byte(start >> 8), byte(end), byte(end >> 8)}
	req = append(req, typ.Bytes()...)
	c.request(req, func(op Opcode, body []byte) {
		if op != OpReadByGroupRsp || len(body) < 1 {
			cb(nil, decodeError(OpReadByGroupReq, op, body))
			return
		}
		entrySize := int(body[0])
		if entrySize < 4 {
			cb(nil, fmt.Errorf("att: bad entry size %d", entrySize))
			return
		}
		var out []GroupValue
		for off := 1; off+entrySize <= len(body); off += entrySize {
			out = append(out, GroupValue{
				Start: uint16(body[off]) | uint16(body[off+1])<<8,
				End:   uint16(body[off+2]) | uint16(body[off+3])<<8,
				Value: append([]byte(nil), body[off+4:off+entrySize]...),
			})
		}
		cb(out, nil)
	})
}

// HandlePDU routes one server PDU. Call from the L2CAP ATT channel.
func (c *Client) HandlePDU(rsp []byte) {
	if len(rsp) == 0 {
		return
	}
	op := Opcode(rsp[0])
	body := rsp[1:]
	switch op {
	case OpNotification:
		if len(body) >= 2 && c.OnNotification != nil {
			c.OnNotification(uint16(body[0])|uint16(body[1])<<8, body[2:])
		}
		return
	case OpIndication:
		if len(body) >= 2 {
			if c.OnIndication != nil {
				c.OnIndication(uint16(body[0])|uint16(body[1])<<8, body[2:])
			}
			c.send([]byte{byte(OpConfirmation)})
		}
		return
	}
	h := c.pending
	if h == nil {
		return // unsolicited response: dropped
	}
	c.stopTimer()
	c.pending = nil
	h(op, body)
	c.drainQueue()
}

// drainQueue sends the next queued request, if any.
func (c *Client) drainQueue() {
	if c.pending != nil || len(c.queue) == 0 {
		return
	}
	req := c.queue[0]
	c.queue = c.queue[1:]
	h := c.queueHandlers[0]
	c.queueHandlers = c.queueHandlers[1:]
	c.pending = h
	c.startTimer()
	c.send(req)
}

func decodeError(req Opcode, op Opcode, body []byte) error {
	if op == 0 && body == nil {
		return fmt.Errorf("%w: no response to %v", ErrTimeout, req)
	}
	if op == OpError && len(body) == 4 {
		return &Error{
			Request: Opcode(body[0]),
			Handle:  uint16(body[1]) | uint16(body[2])<<8,
			Code:    ErrorCode(body[3]),
		}
	}
	return fmt.Errorf("att: unexpected response %v to %v", op, req)
}
