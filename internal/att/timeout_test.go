package att

import (
	"errors"
	"testing"
)

// fakeTimer is a controllable transaction timer.
type fakeTimer struct {
	expire    func()
	armed     int
	cancelled int
}

func (f *fakeTimer) arm(expire func()) func() {
	f.expire = expire
	f.armed++
	return func() { f.cancelled++; f.expire = nil }
}

func TestTransactionTimeoutFailsRequest(t *testing.T) {
	// A server that never answers.
	var timer fakeTimer
	cli := NewClient(func([]byte) {})
	cli.SetTransactionTimer(timer.arm)

	var got Response
	cli.Read(5, func(r Response) { got = r })
	if timer.armed != 1 {
		t.Fatal("timer not armed with the request")
	}
	if !cli.Busy() {
		t.Fatal("client not busy with outstanding request")
	}
	timer.expire()
	if got.Err == nil || !errors.Is(got.Err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", got.Err)
	}
	if cli.Busy() {
		t.Fatal("client still busy after timeout")
	}
}

func TestTransactionTimeoutDrainsQueue(t *testing.T) {
	// Two requests: the first times out, the second must then go out and
	// succeed.
	db := NewDB()
	a := db.Add(UUID16(0xF0F0), []byte{9}, ReadOnly)

	var timer fakeTimer
	silent := true
	var cli *Client
	srv := NewServer(db, func(b []byte) { cli.HandlePDU(b) })
	cli = NewClient(func(b []byte) {
		if !silent {
			srv.HandlePDU(b)
		}
	})
	cli.SetTransactionTimer(timer.arm)

	var first, second Response
	cli.Read(a.Handle, func(r Response) { first = r })
	cli.Read(a.Handle, func(r Response) { second = r })
	silent = false // the server comes back before the retry
	timer.expire()
	if !errors.Is(first.Err, ErrTimeout) {
		t.Fatalf("first err = %v", first.Err)
	}
	if second.Err != nil || len(second.Value) != 1 || second.Value[0] != 9 {
		t.Fatalf("second = %+v", second)
	}
	if timer.armed != 2 {
		t.Fatalf("timer armed %d times, want 2", timer.armed)
	}
}

func TestTimerCancelledOnResponse(t *testing.T) {
	db := NewDB()
	a := db.Add(UUID16(0xF0F1), []byte{1}, ReadOnly)
	var timer fakeTimer
	var cli *Client
	srv := NewServer(db, func(b []byte) { cli.HandlePDU(b) })
	cli = NewClient(func(b []byte) { srv.HandlePDU(b) })
	cli.SetTransactionTimer(timer.arm)
	cli.Read(a.Handle, func(Response) {})
	if timer.cancelled != 1 {
		t.Fatalf("timer cancelled %d times, want 1 (on response)", timer.cancelled)
	}
}

func TestExpiredTimerWithNothingPendingIsNoop(t *testing.T) {
	var timer fakeTimer
	cli := NewClient(func([]byte) {})
	cli.SetTransactionTimer(timer.arm)
	cli.Read(5, func(Response) {})
	// Simulate a stale expiry racing a response already handled.
	expire := timer.expire
	cli.HandlePDU([]byte{byte(OpReadRsp), 1})
	expire() // must not panic or double-fire
}

func TestMTUExchangeLowClientValue(t *testing.T) {
	var srv *Server
	var cli *Client
	srv = NewServer(NewDB(), func(b []byte) { cli.HandlePDU(b) })
	cli = NewClient(func(b []byte) { srv.HandlePDU(b) })
	// Client proposes below the minimum: effective MTU stays 23.
	cli.ExchangeMTU(10, func(m uint16, err error) {
		if err != nil {
			t.Fatal(err)
		}
	})
	if srv.MTU() != DefaultMTU {
		t.Fatalf("MTU = %d, want %d", srv.MTU(), DefaultMTU)
	}
	// Malformed MTU request.
	srv.HandlePDU([]byte{byte(OpMTUReq), 1})
}

func TestStringsRender(t *testing.T) {
	// Exercise every branch of the Stringers.
	ops := []Opcode{OpError, OpMTUReq, OpMTURsp, OpFindInfoReq, OpFindInfoRsp,
		OpReadByTypeReq, OpReadByTypeRsp, OpReadReq, OpReadRsp, OpReadByGroupReq,
		OpReadByGroupRsp, OpWriteReq, OpWriteRsp, OpWriteCmd, OpNotification,
		OpIndication, OpConfirmation, Opcode(0x77)}
	for _, op := range ops {
		if op.String() == "" {
			t.Errorf("empty string for %#x", uint8(op))
		}
	}
	codes := []ErrorCode{ErrInvalidHandle, ErrReadNotPermitted, ErrWriteNotPermitted,
		ErrInvalidPDU, ErrRequestNotSupported, ErrAttributeNotFound,
		ErrInvalidAttributeLength, ErrInsufficientEncryption, ErrorCode(0x99)}
	for _, c := range codes {
		if c.String() == "" {
			t.Errorf("empty string for error %#x", uint8(c))
		}
	}
	if UUID16(0x2800).String() == "" || UUID128([16]byte{1}).String() == "" {
		t.Error("UUID strings empty")
	}
}
