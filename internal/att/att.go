// Package att implements the Attribute Protocol (ATT) of BLE: the typed
// request/response PDUs, the server-side attribute database and a client.
//
// ATT is the generic application layer of BLE (paper §III-A) and the lever
// of attack scenario A: injecting a single ATT Write Request or Read
// Request into a hijacked connection event is enough to trigger any
// behaviour the victim device exposes.
package att

import (
	"errors"
	"fmt"
)

// Opcode is an ATT PDU opcode.
type Opcode uint8

// ATT opcodes (Core Spec Vol 3 Part F §3.4.8).
const (
	OpError          Opcode = 0x01
	OpMTUReq         Opcode = 0x02
	OpMTURsp         Opcode = 0x03
	OpFindInfoReq    Opcode = 0x04
	OpFindInfoRsp    Opcode = 0x05
	OpReadByTypeReq  Opcode = 0x08
	OpReadByTypeRsp  Opcode = 0x09
	OpReadReq        Opcode = 0x0A
	OpReadRsp        Opcode = 0x0B
	OpReadByGroupReq Opcode = 0x10
	OpReadByGroupRsp Opcode = 0x11
	OpWriteReq       Opcode = 0x12
	OpWriteRsp       Opcode = 0x13
	OpWriteCmd       Opcode = 0x52
	OpNotification   Opcode = 0x1B
	OpIndication     Opcode = 0x1D
	OpConfirmation   Opcode = 0x1E
)

// String implements fmt.Stringer.
func (o Opcode) String() string {
	switch o {
	case OpError:
		return "Error Response"
	case OpMTUReq:
		return "Exchange MTU Request"
	case OpMTURsp:
		return "Exchange MTU Response"
	case OpFindInfoReq:
		return "Find Information Request"
	case OpFindInfoRsp:
		return "Find Information Response"
	case OpReadByTypeReq:
		return "Read By Type Request"
	case OpReadByTypeRsp:
		return "Read By Type Response"
	case OpReadReq:
		return "Read Request"
	case OpReadRsp:
		return "Read Response"
	case OpReadByGroupReq:
		return "Read By Group Type Request"
	case OpReadByGroupRsp:
		return "Read By Group Type Response"
	case OpWriteReq:
		return "Write Request"
	case OpWriteRsp:
		return "Write Response"
	case OpWriteCmd:
		return "Write Command"
	case OpNotification:
		return "Handle Value Notification"
	case OpIndication:
		return "Handle Value Indication"
	case OpConfirmation:
		return "Handle Value Confirmation"
	default:
		return fmt.Sprintf("ATT(%#02x)", uint8(o))
	}
}

// ErrorCode is an ATT error code carried in an Error Response.
type ErrorCode uint8

// ATT error codes.
const (
	ErrInvalidHandle          ErrorCode = 0x01
	ErrReadNotPermitted       ErrorCode = 0x02
	ErrWriteNotPermitted      ErrorCode = 0x03
	ErrInvalidPDU             ErrorCode = 0x04
	ErrRequestNotSupported    ErrorCode = 0x06
	ErrAttributeNotFound      ErrorCode = 0x0A
	ErrInvalidAttributeLength ErrorCode = 0x0D
	ErrInsufficientEncryption ErrorCode = 0x0F
)

// String implements fmt.Stringer.
func (e ErrorCode) String() string {
	switch e {
	case ErrInvalidHandle:
		return "invalid handle"
	case ErrReadNotPermitted:
		return "read not permitted"
	case ErrWriteNotPermitted:
		return "write not permitted"
	case ErrInvalidPDU:
		return "invalid PDU"
	case ErrRequestNotSupported:
		return "request not supported"
	case ErrAttributeNotFound:
		return "attribute not found"
	case ErrInvalidAttributeLength:
		return "invalid attribute value length"
	case ErrInsufficientEncryption:
		return "insufficient encryption"
	default:
		return fmt.Sprintf("error %#02x", uint8(e))
	}
}

// Error is a protocol-level ATT error (an Error Response).
type Error struct {
	Request Opcode
	Handle  uint16
	Code    ErrorCode
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("att: %v on handle %#04x: %v", e.Request, e.Handle, e.Code)
}

// ErrTruncated reports a malformed (too short) ATT PDU.
var ErrTruncated = errors.New("att: truncated PDU")

// DefaultMTU is the minimum/default ATT_MTU for LE.
const DefaultMTU = 23

// UUID is an attribute type: either a 16-bit Bluetooth SIG UUID or a full
// 128-bit vendor UUID.
type UUID struct {
	b    [16]byte
	is16 bool
}

// UUID16 builds a SIG 16-bit UUID.
func UUID16(v uint16) UUID {
	var u UUID
	u.is16 = true
	u.b[0] = byte(v)
	u.b[1] = byte(v >> 8)
	return u
}

// UUID128 builds a vendor UUID from 16 bytes (little endian, as on air).
func UUID128(b [16]byte) UUID { return UUID{b: b} }

// Is16 reports whether this is a 16-bit UUID.
func (u UUID) Is16() bool { return u.is16 }

// Uint16 returns the short value (valid only when Is16).
func (u UUID) Uint16() uint16 { return uint16(u.b[0]) | uint16(u.b[1])<<8 }

// Bytes returns the on-air encoding: 2 or 16 bytes little endian.
func (u UUID) Bytes() []byte {
	if u.is16 {
		return []byte{u.b[0], u.b[1]}
	}
	out := make([]byte, 16)
	copy(out, u.b[:])
	return out
}

// UUIDFromBytes parses a 2- or 16-byte on-air UUID.
func UUIDFromBytes(b []byte) (UUID, error) {
	switch len(b) {
	case 2:
		return UUID16(uint16(b[0]) | uint16(b[1])<<8), nil
	case 16:
		var raw [16]byte
		copy(raw[:], b)
		return UUID128(raw), nil
	default:
		return UUID{}, fmt.Errorf("att: UUID must be 2 or 16 bytes, got %d", len(b))
	}
}

// String implements fmt.Stringer.
func (u UUID) String() string {
	if u.is16 {
		return fmt.Sprintf("0x%04X", u.Uint16())
	}
	return fmt.Sprintf("%x", u.b)
}

// Well-known GATT declaration UUIDs.
var (
	UUIDPrimaryService   = UUID16(0x2800)
	UUIDSecondaryService = UUID16(0x2801)
	UUIDCharacteristic   = UUID16(0x2803)
	UUIDCCCD             = UUID16(0x2902)
	UUIDDeviceName       = UUID16(0x2A00)
	UUIDGAPService       = UUID16(0x1800)
)
