package att

import (
	"sort"
)

// Permissions controls access to an attribute.
type Permissions struct {
	Read  bool
	Write bool
	// ReadRequiresEncryption / WriteRequiresEncryption gate access on an
	// encrypted link — the GATT-level countermeasure of paper §VIII.
	ReadRequiresEncryption  bool
	WriteRequiresEncryption bool
}

// ReadWrite is the common open permission set.
var ReadWrite = Permissions{Read: true, Write: true}

// ReadOnly permits reads only.
var ReadOnly = Permissions{Read: true}

// Attribute is one entry of the ATT database.
type Attribute struct {
	Handle uint16
	Type   UUID
	Value  []byte
	Perms  Permissions
	// OnWrite, when set, observes accepted writes (after Value updates).
	OnWrite func(value []byte)
	// OnRead, when set, produces the value dynamically.
	OnRead func() []byte
}

// DB is an ordered attribute database.
type DB struct {
	attrs []*Attribute
	next  uint16
}

// NewDB returns an empty database; handles are assigned from 1.
func NewDB() *DB { return &DB{next: 1} }

// Add appends an attribute, assigning the next handle, and returns it.
func (db *DB) Add(typ UUID, value []byte, perms Permissions) *Attribute {
	a := &Attribute{
		Handle: db.next,
		Type:   typ,
		Value:  append([]byte(nil), value...),
		Perms:  perms,
	}
	db.next++
	db.attrs = append(db.attrs, a)
	return a
}

// Find returns the attribute with the given handle, or nil.
func (db *DB) Find(handle uint16) *Attribute {
	i := sort.Search(len(db.attrs), func(i int) bool { return db.attrs[i].Handle >= handle })
	if i < len(db.attrs) && db.attrs[i].Handle == handle {
		return db.attrs[i]
	}
	return nil
}

// All returns the attributes in handle order (shared slice; do not mutate).
func (db *DB) All() []*Attribute { return db.attrs }

// Len returns the number of attributes.
func (db *DB) Len() int { return len(db.attrs) }

// Server answers ATT requests against a DB.
type Server struct {
	db   *DB
	send func([]byte)
	mtu  int
	// Encrypted reports the link's encryption state, for permission gates.
	Encrypted func() bool
	// OnWrite observes every accepted write (handle, value) — device
	// behaviour models hook application logic here.
	OnWrite func(handle uint16, value []byte)
}

// NewServer builds a server that transmits responses via send.
func NewServer(db *DB, send func([]byte)) *Server {
	return &Server{db: db, send: send, mtu: DefaultMTU}
}

// SetSend replaces the transmit function — used when the server is built
// before its transport exists (e.g. a forged profile waiting for a
// hijacked connection).
func (s *Server) SetSend(send func([]byte)) { s.send = send }

// MTU returns the negotiated ATT_MTU.
func (s *Server) MTU() int { return s.mtu }

// Notify sends a Handle Value Notification.
func (s *Server) Notify(handle uint16, value []byte) {
	out := []byte{byte(OpNotification), byte(handle), byte(handle >> 8)}
	s.send(append(out, value...))
}

// Indicate sends a Handle Value Indication (no confirmation tracking).
func (s *Server) Indicate(handle uint16, value []byte) {
	out := []byte{byte(OpIndication), byte(handle), byte(handle >> 8)}
	s.send(append(out, value...))
}

// HandlePDU processes one client PDU.
func (s *Server) HandlePDU(req []byte) {
	if len(req) == 0 {
		return
	}
	op := Opcode(req[0])
	body := req[1:]
	switch op {
	case OpMTUReq:
		s.handleMTU(body)
	case OpReadReq:
		s.handleRead(body)
	case OpWriteReq:
		s.handleWrite(body, true)
	case OpWriteCmd:
		s.handleWrite(body, false)
	case OpFindInfoReq:
		s.handleFindInfo(body)
	case OpReadByTypeReq:
		s.handleReadByType(body)
	case OpReadByGroupReq:
		s.handleReadByGroup(body)
	case OpConfirmation:
		// Indication confirmed; nothing tracked.
	default:
		s.sendError(op, 0, ErrRequestNotSupported)
	}
}

func (s *Server) sendError(req Opcode, handle uint16, code ErrorCode) {
	s.send([]byte{byte(OpError), byte(req), byte(handle), byte(handle >> 8), byte(code)})
}

func (s *Server) handleMTU(body []byte) {
	if len(body) != 2 {
		s.sendError(OpMTUReq, 0, ErrInvalidPDU)
		return
	}
	client := int(body[0]) | int(body[1])<<8
	if client < DefaultMTU {
		client = DefaultMTU
	}
	// We support up to 247; the effective MTU is the minimum.
	server := 247
	if client < server {
		s.mtu = client
	} else {
		s.mtu = server
	}
	s.send([]byte{byte(OpMTURsp), byte(server), byte(server >> 8)})
}

func (s *Server) handleRead(body []byte) {
	if len(body) != 2 {
		s.sendError(OpReadReq, 0, ErrInvalidPDU)
		return
	}
	handle := uint16(body[0]) | uint16(body[1])<<8
	a := s.db.Find(handle)
	if a == nil {
		s.sendError(OpReadReq, handle, ErrInvalidHandle)
		return
	}
	if !a.Perms.Read {
		s.sendError(OpReadReq, handle, ErrReadNotPermitted)
		return
	}
	if a.Perms.ReadRequiresEncryption && !s.encrypted() {
		s.sendError(OpReadReq, handle, ErrInsufficientEncryption)
		return
	}
	value := a.Value
	if a.OnRead != nil {
		value = a.OnRead()
	}
	if max := s.mtu - 1; len(value) > max {
		value = value[:max]
	}
	s.send(append([]byte{byte(OpReadRsp)}, value...))
}

func (s *Server) handleWrite(body []byte, withResponse bool) {
	op := OpWriteCmd
	if withResponse {
		op = OpWriteReq
	}
	if len(body) < 2 {
		if withResponse {
			s.sendError(op, 0, ErrInvalidPDU)
		}
		return
	}
	handle := uint16(body[0]) | uint16(body[1])<<8
	value := body[2:]
	a := s.db.Find(handle)
	fail := func(code ErrorCode) {
		if withResponse {
			s.sendError(op, handle, code)
		}
	}
	if a == nil {
		fail(ErrInvalidHandle)
		return
	}
	if !a.Perms.Write {
		fail(ErrWriteNotPermitted)
		return
	}
	if a.Perms.WriteRequiresEncryption && !s.encrypted() {
		fail(ErrInsufficientEncryption)
		return
	}
	if len(value) > 512 {
		fail(ErrInvalidAttributeLength)
		return
	}
	a.Value = append(a.Value[:0], value...)
	if a.OnWrite != nil {
		a.OnWrite(a.Value)
	}
	if s.OnWrite != nil {
		s.OnWrite(handle, a.Value)
	}
	if withResponse {
		s.send([]byte{byte(OpWriteRsp)})
	}
}

func (s *Server) handleFindInfo(body []byte) {
	if len(body) != 4 {
		s.sendError(OpFindInfoReq, 0, ErrInvalidPDU)
		return
	}
	start := uint16(body[0]) | uint16(body[1])<<8
	end := uint16(body[2]) | uint16(body[3])<<8
	if start == 0 || start > end {
		s.sendError(OpFindInfoReq, start, ErrInvalidHandle)
		return
	}
	var out []byte
	var format byte
	for _, a := range s.db.attrs {
		if a.Handle < start || a.Handle > end {
			continue
		}
		f := byte(0x01)
		if !a.Type.Is16() {
			f = 0x02
		}
		if format == 0 {
			format = f
		}
		if f != format {
			break // one format per response
		}
		entry := append([]byte{byte(a.Handle), byte(a.Handle >> 8)}, a.Type.Bytes()...)
		if len(out)+len(entry)+2 > s.mtu-1 {
			break
		}
		out = append(out, entry...)
	}
	if len(out) == 0 {
		s.sendError(OpFindInfoReq, start, ErrAttributeNotFound)
		return
	}
	s.send(append([]byte{byte(OpFindInfoRsp), format}, out...))
}

func (s *Server) handleReadByType(body []byte) {
	if len(body) != 6 && len(body) != 20 {
		s.sendError(OpReadByTypeReq, 0, ErrInvalidPDU)
		return
	}
	start := uint16(body[0]) | uint16(body[1])<<8
	end := uint16(body[2]) | uint16(body[3])<<8
	typ, err := UUIDFromBytes(body[4:])
	if err != nil || start == 0 || start > end {
		s.sendError(OpReadByTypeReq, start, ErrInvalidPDU)
		return
	}
	var out []byte
	entryLen := -1
	for _, a := range s.db.attrs {
		if a.Handle < start || a.Handle > end || a.Type != typ {
			continue
		}
		if a.Perms.ReadRequiresEncryption && !s.encrypted() {
			continue
		}
		value := a.Value
		if a.OnRead != nil {
			value = a.OnRead()
		}
		e := append([]byte{byte(a.Handle), byte(a.Handle >> 8)}, value...)
		if entryLen == -1 {
			entryLen = len(e)
		}
		if len(e) != entryLen {
			break // uniform length per response
		}
		if len(out)+len(e)+2 > s.mtu-1 {
			break
		}
		out = append(out, e...)
	}
	if len(out) == 0 {
		s.sendError(OpReadByTypeReq, start, ErrAttributeNotFound)
		return
	}
	s.send(append([]byte{byte(OpReadByTypeRsp), byte(entryLen)}, out...))
}

func (s *Server) handleReadByGroup(body []byte) {
	if len(body) != 6 && len(body) != 20 {
		s.sendError(OpReadByGroupReq, 0, ErrInvalidPDU)
		return
	}
	start := uint16(body[0]) | uint16(body[1])<<8
	end := uint16(body[2]) | uint16(body[3])<<8
	typ, err := UUIDFromBytes(body[4:])
	if err != nil || start == 0 || start > end {
		s.sendError(OpReadByGroupReq, start, ErrInvalidPDU)
		return
	}
	if typ != UUIDPrimaryService && typ != UUIDSecondaryService {
		s.sendError(OpReadByGroupReq, start, ErrRequestNotSupported)
		return
	}
	var out []byte
	entryLen := -1
	for i, a := range s.db.attrs {
		if a.Handle < start || a.Handle > end || a.Type != typ {
			continue
		}
		groupEnd := s.groupEnd(i)
		e := []byte{byte(a.Handle), byte(a.Handle >> 8), byte(groupEnd), byte(groupEnd >> 8)}
		e = append(e, a.Value...)
		if entryLen == -1 {
			entryLen = len(e)
		}
		if len(e) != entryLen {
			break
		}
		if len(out)+len(e)+2 > s.mtu-1 {
			break
		}
		out = append(out, e...)
	}
	if len(out) == 0 {
		s.sendError(OpReadByGroupReq, start, ErrAttributeNotFound)
		return
	}
	s.send(append([]byte{byte(OpReadByGroupRsp), byte(entryLen)}, out...))
}

// groupEnd returns the last handle of the service group starting at index i.
func (s *Server) groupEnd(i int) uint16 {
	for j := i + 1; j < len(s.db.attrs); j++ {
		t := s.db.attrs[j].Type
		if t == UUIDPrimaryService || t == UUIDSecondaryService {
			return s.db.attrs[j-1].Handle
		}
	}
	return s.db.attrs[len(s.db.attrs)-1].Handle
}

func (s *Server) encrypted() bool {
	return s.Encrypted != nil && s.Encrypted()
}
