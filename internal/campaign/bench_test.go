package campaign

import (
	"fmt"
	"testing"
)

// BenchmarkRunnerOverhead measures the pool's dispatch + collation cost on
// trials that do a fixed slab of deterministic CPU work, isolating the
// engine from simulation cost (the exp1-scale speedup benchmark lives in
// internal/experiments).
func BenchmarkRunnerOverhead(b *testing.B) {
	work := func(t Trial) (any, error) {
		rng := t.RNG()
		v := uint64(0)
		for i := 0; i < 2000; i++ {
			v ^= rng.Uint64()
		}
		return v, nil
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec := &Spec{Name: "bench", SeedBase: 42, Points: []Point{
					{Label: "p", Trials: 64, Run: work},
				}}
				if _, err := (&Runner{Workers: workers}).Run(spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
