package campaign

// Collator releases out-of-order items in ordinal order. It is the
// ordered-collation core the runner uses to turn a worker pool's
// completion-order result stream back into the serial-order sequence, and
// the distributed fabric uses the same mechanism one level up to merge
// shard streams arriving from remote workers into deterministic campaign
// order.
//
// Ordinals must form a dense sequence starting at the constructor's base;
// each ordinal must be added exactly once. Collator is not goroutine-safe:
// like the runner's collation loop, it belongs to a single consumer
// draining a channel.
type Collator[T any] struct {
	next    int
	pending map[int]T
	out     []T

	// OnRelease, when non-nil, is called with each ordinal as it becomes
	// releasable (in release order, before Add returns). Observability
	// layers hook it to timestamp merge progress without the collator
	// knowing about spans.
	OnRelease func(ordinal int)
}

// NewCollator returns a collator expecting ordinals next, next+1, ....
func NewCollator[T any](next int) *Collator[T] {
	return &Collator[T]{next: next, pending: make(map[int]T)}
}

// Add accepts the item with the given ordinal and returns the items that
// are now releasable in order (empty unless ordinal filled the gap at the
// front). The returned slice is reused by the next Add call — consume it
// before adding again.
func (c *Collator[T]) Add(ordinal int, v T) []T {
	c.out = c.out[:0]
	if ordinal != c.next {
		c.pending[ordinal] = v
		return c.out
	}
	c.release(ordinal, v)
	for {
		head, ok := c.pending[c.next]
		if !ok {
			return c.out
		}
		delete(c.pending, c.next)
		c.release(c.next, head)
	}
}

func (c *Collator[T]) release(ordinal int, v T) {
	c.out = append(c.out, v)
	c.next++
	if c.OnRelease != nil {
		c.OnRelease(ordinal)
	}
}

// Next returns the ordinal the collator is waiting for.
func (c *Collator[T]) Next() int { return c.next }

// Pending returns how many items are buffered waiting for the gap at the
// front to fill.
func (c *Collator[T]) Pending() int { return len(c.pending) }
