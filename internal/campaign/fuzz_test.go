package campaign

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecodeTrialRecord hammers the binary trial-stream decoder, the
// same way FuzzDecodeShardJournal hammers the checkpoint decoder.
// Properties:
//
//   - it never panics, whatever bytes arrive off the wire;
//   - any stream it accepts re-encodes to the identical bytes
//     (decode∘encode is the identity — the canonical-encoding checks
//     exist for exactly this);
//   - SplitBinaryStream agrees with the full decode on every accepted
//     stream;
//   - every rejection is ErrBinaryCorrupt — truncation included, since a
//     result stream has no tolerated torn tail.
func FuzzDecodeTrialRecord(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte(binaryMagic))
	f.Add([]byte("NOPE"))
	f.Add(append([]byte(binaryMagic), BinaryVersion))
	empty := append(BinaryHeader("c", 1, 0, 0), BinaryTrailer(0, 0, 0)...)
	f.Add(empty)
	one := BinaryHeader("camp", 42, 1, 1)
	one = AppendBinaryRecord(one, Record{
		Point: "p0", Trial: 0, Seed: 99, OK: true,
		Value: []byte(`{"success":true,"attempts":2}`),
	})
	one = append(one, BinaryTrailer(1, 1, 0)...)
	f.Add(one)
	f.Add(one[:len(one)-5]) // truncated tail
	flipped := append([]byte(nil), one...)
	flipped[len(flipped)-1] ^= 0x01 // corrupt trailer CRC
	f.Add(flipped)
	failed := BinaryHeader("camp", 42, 1, 2)
	failed = AppendBinaryRecord(failed, Record{
		Point: "p0", Trial: 0, Seed: 7, Err: "missed", Panicked: true,
	})
	failed = AppendBinaryRecord(failed, Record{
		Point: "p0", Trial: 1, Seed: 8, Err: "deadline", TimedOut: true,
	})
	failed = append(failed, BinaryTrailer(2, 0, 2)...)
	f.Add(failed)

	f.Fuzz(func(t *testing.T, data []byte) {
		info, recs, tallies, err := DecodeBinary(data)
		if err != nil {
			if !errors.Is(err, ErrBinaryCorrupt) {
				t.Fatalf("decode error is not ErrBinaryCorrupt: %v", err)
			}
			if _, _, _, serr := SplitBinaryStream(data); serr == nil {
				t.Fatalf("decode rejected but split accepted")
			}
			return
		}
		if !bytes.Equal(EncodeBinary(info, recs, tallies), data) {
			t.Fatalf("accepted stream does not re-encode to itself")
		}
		sinfo, payload, stallies, serr := SplitBinaryStream(data)
		if serr != nil {
			t.Fatalf("decode accepted but split rejected: %v", serr)
		}
		if sinfo != info || stallies != tallies {
			t.Fatalf("split disagrees with decode: %+v/%+v vs %+v/%+v",
				sinfo, stallies, info, tallies)
		}
		reassembled := BinaryHeader(info.Name, info.SeedBase, info.Points, info.Trials)
		reassembled = append(reassembled, payload...)
		reassembled = append(reassembled, BinaryTrailer(tallies.Trials, tallies.OK, tallies.Failed)...)
		if !bytes.Equal(reassembled, data) {
			t.Fatalf("split parts do not reassemble the stream")
		}
	})
}
