package campaign

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Sink observes a campaign as it streams. The runner invokes all three
// methods from a single goroutine and delivers results in ordinal order,
// so implementations need no locking against the runner (a sink that is
// also read from other goroutines, like Tracker, locks for its readers).
type Sink interface {
	// Start announces the campaign before any trial runs.
	Start(spec *Spec, totalTrials int)
	// Result delivers one collated result. Under FailFast no results are
	// delivered past the failing trial.
	Result(r Result)
	// Finish delivers the final metrics after the pool has drained.
	Finish(m Metrics)
}

// SinkFuncs adapts plain callbacks into a Sink; nil fields are skipped.
type SinkFuncs struct {
	OnStart  func(spec *Spec, totalTrials int)
	OnResult func(r Result)
	OnFinish func(m Metrics)
}

// Start implements Sink.
func (s SinkFuncs) Start(spec *Spec, totalTrials int) {
	if s.OnStart != nil {
		s.OnStart(spec, totalTrials)
	}
}

// Result implements Sink.
func (s SinkFuncs) Result(r Result) {
	if s.OnResult != nil {
		s.OnResult(r)
	}
}

// Finish implements Sink.
func (s SinkFuncs) Finish(m Metrics) {
	if s.OnFinish != nil {
		s.OnFinish(m)
	}
}

// OnResult wraps a per-result callback as a Sink.
func OnResult(f func(Result)) Sink { return SinkFuncs{OnResult: f} }

// JSONL streams the campaign as JSON lines for offline analysis: one
// "campaign" header line, one "result" line per trial and one "metrics"
// trailer. Write errors are remembered and surfaced by Err (a result
// stream is telemetry; it must not be able to fail the campaign).
type JSONL struct {
	enc *json.Encoder
	err error
}

// NewJSONL returns a sink writing JSON lines to w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Err returns the first write/encode error, if any.
func (j *JSONL) Err() error { return j.err }

func (j *JSONL) emit(v any) {
	if j.err == nil {
		j.err = j.enc.Encode(v)
	}
}

// Start implements Sink.
func (j *JSONL) Start(spec *Spec, totalTrials int) {
	j.emit(struct {
		Kind     string `json:"kind"`
		Campaign string `json:"campaign"`
		SeedBase uint64 `json:"seed_base"`
		Points   int    `json:"points"`
		Trials   int    `json:"trials"`
	}{"campaign", spec.Name, spec.SeedBase, len(spec.Points), totalTrials})
}

// Result implements Sink.
func (j *JSONL) Result(r Result) {
	line := struct {
		Kind      string          `json:"kind"`
		Point     string          `json:"point"`
		Trial     int             `json:"trial"`
		Seed      uint64          `json:"seed"`
		OK        bool            `json:"ok"`
		Err       string          `json:"err,omitempty"`
		Panicked  bool            `json:"panicked,omitempty"`
		TimedOut  bool            `json:"timed_out,omitempty"`
		Attempts  int             `json:"attempts"`
		ElapsedUS int64           `json:"elapsed_us"`
		Value     json.RawMessage `json:"value,omitempty"`
	}{
		Kind:      "result",
		Point:     r.Point,
		Trial:     r.Index,
		Seed:      r.Seed,
		OK:        r.Err == nil,
		Panicked:  r.Panicked,
		TimedOut:  r.TimedOut,
		Attempts:  r.Attempts,
		ElapsedUS: r.Elapsed.Microseconds(),
	}
	if r.Err != nil {
		line.Err = r.Err.Error()
	}
	line.Value = marshalValue(r.Value)
	j.emit(line)
}

// Finish implements Sink.
func (j *JSONL) Finish(m Metrics) {
	j.emit(struct {
		Kind string `json:"kind"`
		Metrics
	}{"metrics", m})
}

// PointProgress is one point's live tally inside a Tracker snapshot.
type PointProgress struct {
	Label  string
	Trials int
	Done   int
	Failed int
}

// Tracker is a Sink keeping live aggregate progress that other goroutines
// (a status line, an HTTP handler) may read concurrently via Snapshot.
type Tracker struct {
	mu      sync.Mutex
	started time.Time
	total   int
	done    int
	failed  int
	order   []string
	points  map[string]*PointProgress
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker { return &Tracker{points: make(map[string]*PointProgress)} }

// Start implements Sink.
func (t *Tracker) Start(spec *Spec, totalTrials int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.started = time.Now()
	t.total = totalTrials
	t.done, t.failed = 0, 0
	t.order = t.order[:0]
	t.points = make(map[string]*PointProgress)
	for _, p := range spec.Points {
		if _, ok := t.points[p.Label]; !ok {
			t.order = append(t.order, p.Label)
			t.points[p.Label] = &PointProgress{Label: p.Label}
		}
		t.points[p.Label].Trials += p.Trials
	}
}

// Result implements Sink.
func (t *Tracker) Result(r Result) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.done++
	pp, ok := t.points[r.Point]
	if !ok {
		pp = &PointProgress{Label: r.Point}
		t.order = append(t.order, r.Point)
		t.points[r.Point] = pp
	}
	pp.Done++
	if r.Err != nil {
		t.failed++
		pp.Failed++
	}
}

// Finish implements Sink.
func (t *Tracker) Finish(Metrics) {}

// TrackerSnapshot is a point-in-time copy of a Tracker's aggregates.
type TrackerSnapshot struct {
	Total   int
	Done    int
	Failed  int
	Elapsed time.Duration
	Points  []PointProgress
}

// Fraction returns completed/total in [0,1] (1 when the campaign is empty).
func (s TrackerSnapshot) Fraction() float64 {
	if s.Total == 0 {
		return 1
	}
	return float64(s.Done) / float64(s.Total)
}

// Snapshot returns the current aggregates; safe to call from any goroutine.
func (t *Tracker) Snapshot() TrackerSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := TrackerSnapshot{Total: t.total, Done: t.done, Failed: t.failed}
	if !t.started.IsZero() {
		s.Elapsed = time.Since(t.started)
	}
	for _, label := range t.order {
		s.Points = append(s.Points, *t.points[label])
	}
	return s
}
