package campaign

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestCollatorOutOfOrder drives the collator with a fully reversed and a
// randomly shuffled arrival order and checks the released sequence is the
// ordinal sequence both times — the property the runner's sink ordering
// and the fabric's cross-node shard merge rest on.
func TestCollatorOutOfOrder(t *testing.T) {
	const n = 64
	orders := map[string][]int{
		"reversed": make([]int, n),
		"shuffled": rand.New(rand.NewSource(7)).Perm(n),
	}
	for i := range orders["reversed"] {
		orders["reversed"][i] = n - 1 - i
	}
	for name, arrival := range orders {
		c := NewCollator[int](0)
		var got []int
		for _, ord := range arrival {
			got = append(got, c.Add(ord, ord*10)...)
		}
		if c.Pending() != 0 {
			t.Fatalf("%s: %d items still pending after all %d added", name, c.Pending(), n)
		}
		if c.Next() != n {
			t.Fatalf("%s: Next() = %d, want %d", name, c.Next(), n)
		}
		if len(got) != n {
			t.Fatalf("%s: released %d items, want %d", name, len(got), n)
		}
		for i, v := range got {
			if v != i*10 {
				t.Fatalf("%s: release position %d got %d, want %d", name, i, v, i*10)
			}
		}
	}
}

// TestCollatorOnRelease checks the hook fires once per ordinal, in
// release order, even when a gap-fill releases a run of buffered items.
func TestCollatorOnRelease(t *testing.T) {
	c := NewCollator[string](0)
	var fired []int
	c.OnRelease = func(ordinal int) { fired = append(fired, ordinal) }
	c.Add(2, "c")
	c.Add(1, "b")
	if len(fired) != 0 {
		t.Fatalf("hook fired %v before the front gap filled", fired)
	}
	c.Add(0, "a")
	if len(fired) != 3 {
		t.Fatalf("hook fired %d times, want 3", len(fired))
	}
	for i, ord := range fired {
		if ord != i {
			t.Fatalf("hook order %v, want release order", fired)
		}
	}
}

// TestCollatorGapHoldsBack checks nothing is released while the front
// ordinal is missing, and that filling the gap releases the whole run.
func TestCollatorGapHoldsBack(t *testing.T) {
	c := NewCollator[string](0)
	for _, ord := range []int{2, 1, 3} {
		if out := c.Add(ord, "x"); len(out) != 0 {
			t.Fatalf("ordinal %d released %d items before the gap at 0 filled", ord, len(out))
		}
	}
	if c.Pending() != 3 {
		t.Fatalf("Pending() = %d, want 3", c.Pending())
	}
	if out := c.Add(0, "x"); len(out) != 4 {
		t.Fatalf("filling the gap released %d items, want 4", len(out))
	}
}

// TestCollatorNonZeroBase covers a collator rooted at an arbitrary first
// ordinal (a resumed merge starts past the journaled prefix).
func TestCollatorNonZeroBase(t *testing.T) {
	c := NewCollator[int](5)
	if out := c.Add(6, 6); len(out) != 0 {
		t.Fatalf("ordinal 6 released early: %v", out)
	}
	out := c.Add(5, 5)
	if len(out) != 2 || out[0] != 5 || out[1] != 6 {
		t.Fatalf("Add(5) released %v, want [5 6]", out)
	}
}

// TestNDJSONFrameHelpers pins the exported header/trailer bytes to what
// the sink itself writes, so a fabric-merged stream's frame lines cannot
// drift from a single-process run's.
func TestNDJSONFrameHelpers(t *testing.T) {
	spec := &Spec{
		Name:     "fig9-exp1",
		SeedBase: 1000,
		Points: []Point{
			{Label: "a", Trials: 2, Run: func(Trial) (any, error) { return nil, nil }},
			{Label: "b", Trials: 1, Run: func(Trial) (any, error) { return nil, nil }},
		},
	}
	var buf bytes.Buffer
	sink := NewNDJSON(&buf)
	sink.Start(spec, spec.TotalTrials())
	header := append([]byte(nil), buf.Bytes()...)
	if want := NDJSONHeader("fig9-exp1", 1000, 2, 3); !bytes.Equal(header, want) {
		t.Fatalf("sink header %q != NDJSONHeader %q", header, want)
	}
	buf.Reset()
	sink.Result(Result{Point: "a", Index: 0})
	sink.Result(Result{Point: "a", Index: 1, Err: ErrTimeout})
	buf.Reset()
	sink.Finish(Metrics{})
	if want := NDJSONTrailer(2, 1, 1); !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("sink trailer %q != NDJSONTrailer %q", buf.Bytes(), want)
	}
}
