package campaign

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"injectable/internal/obs"
	"injectable/internal/sim"
)

// Runner executes a Spec over a bounded worker pool.
//
// The zero value is usable: all cores, no deadline, no retries, collect
// every result.
type Runner struct {
	// Workers bounds concurrency; 0 (or negative) means GOMAXPROCS.
	// Workers=1 is the serial degenerate case.
	Workers int
	// Timeout, when positive, is the wall-clock deadline for one trial
	// attempt. A trial that exceeds it is recorded as failed with
	// ErrTimeout (its goroutine is abandoned — simulation trials are pure
	// CPU work with no resources to reclaim).
	Timeout time.Duration
	// Retries re-runs a failed trial attempt up to this many extra times
	// (useful for trial functions with wall-clock nondeterminism; a
	// deterministic simulation will fail identically every time).
	Retries int
	// FailFast aborts the campaign at the first failed result in ordinal
	// order, returning a *TrialError. Because abort is decided on the
	// collated sequence, the returned error and the collected Results are
	// identical for every worker count.
	FailFast bool
	// Sinks observe the run. All sink methods are invoked from a single
	// goroutine, in ordinal order — sink implementations need no locking
	// against the runner.
	Sinks []Sink
	// CollectObs hands every trial attempt a fresh obs.Hub (via Trial.Obs)
	// and snapshots its registry into Result.Obs when the attempt returns.
	// Per-trial hubs are what keep metric collection race-free and
	// deterministic at any worker count: no two trials ever share a
	// registry, and snapshots are delivered in ordinal order like every
	// other result field.
	CollectObs bool
}

// Result reports one trial.
//
// Value, Err, Panicked, TimedOut, Attempts and the identity fields are
// deterministic for a deterministic TrialFunc; Elapsed and Worker are
// measurements and vary run to run.
type Result struct {
	Campaign string
	Point    string
	Index    int
	Ordinal  int
	Seed     uint64
	// Value is the TrialFunc's return value (nil on failure).
	Value any
	// Err is the trial's failure, if any; *PanicError for panics,
	// ErrTimeout (wrapped) for deadline hits.
	Err error
	// Panicked marks a trial whose last attempt panicked.
	Panicked bool
	// TimedOut marks a trial whose last attempt hit the deadline.
	TimedOut bool
	// Attempts is 1 plus the retries consumed.
	Attempts int
	// Elapsed is the wall time across all attempts (not deterministic).
	Elapsed time.Duration
	// Worker is the pool slot that ran the trial (not deterministic).
	Worker int
	// Obs is the metrics snapshot of the trial's last attempt (nil unless
	// the runner's CollectObs is set, or when the attempt timed out — its
	// abandoned goroutine may still be writing).
	Obs *obs.Snapshot
}

// Failed reports whether the trial ultimately failed.
func (r Result) Failed() bool { return r.Err != nil }

// Outcome is a completed campaign: ordinally-ordered results plus counters.
type Outcome struct {
	// Results holds one entry per collected trial in ordinal order. Under
	// FailFast the slice ends at the failing trial.
	Results []Result
	// Metrics summarises the run.
	Metrics Metrics
}

// Run executes the spec and blocks until the campaign completes (or, under
// FailFast, until the first in-order failure has been identified and the
// pool drained). The returned error is nil unless the spec is invalid or
// FailFast tripped.
func (r *Runner) Run(spec *Spec) (*Outcome, error) {
	return r.RunContext(context.Background(), spec)
}

// RunContext is Run under a context. When ctx is cancelled (or its
// deadline expires) the feeder stops dispatching, every in-flight trial
// sees the cancellation through Trial.Ctx, and the call returns the
// collated prefix of results together with ctx's error. Shutdown latency
// is bounded by how quickly the trial functions observe Trial.Ctx — the
// experiments layer checks it between simulation slices — and no worker
// goroutines are left behind.
func (r *Runner) RunContext(ctx context.Context, spec *Spec) (*Outcome, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	trials := flatten(spec)
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(trials) {
		workers = len(trials)
	}

	start := time.Now()
	ctr := &counters{}
	out := &Outcome{Results: make([]Result, 0, len(trials))}
	for _, s := range r.Sinks {
		s.Start(spec, len(trials))
	}
	if len(trials) == 0 {
		out.Metrics = ctr.snapshot(workers, time.Since(start))
		for _, s := range r.Sinks {
			s.Finish(out.Metrics)
		}
		return out, nil
	}

	jobs := make(chan Trial)
	resCh := make(chan Result, workers)
	stop := make(chan struct{})
	var stopOnce sync.Once
	abort := func() { stopOnce.Do(func() { close(stop) }) }

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Each worker owns one simulation arena, reused across its
			// trials so steady-state trials recycle scheduler events and
			// frame buffers instead of re-allocating them.
			arena := sim.NewArena()
			// One warm slot per worker: the jobs channel delivers trials
			// point-major, so a worker's points are non-decreasing and a
			// single cached environment warms each point at most once per
			// worker. An arena hosts one live world, so a new point's warm
			// world evicts the previous point's.
			var warm warmSlot
			for t := range jobs {
				t.Arena = arena
				t.Ctx = ctx
				if t.warmup != nil {
					if !warm.valid || warm.point != t.Point {
						warm = runWarmup(t, ctx)
						ctr.warmups.Add(1)
					}
					t.Warm, t.WarmErr = warm.value, warm.err
				}
				res := r.runTrial(id, t, ctr)
				if res.TimedOut {
					// The abandoned attempt goroutine may still be touching
					// the arena (and any warm world built on it); hand the
					// next trial a fresh one and re-warm.
					arena = sim.NewArena()
					warm = warmSlot{}
				}
				resCh <- res
			}
		}(w)
	}
	go func() { // feeder
		defer close(jobs)
		for _, t := range trials {
			select {
			case jobs <- t:
			case <-stop:
				return
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() { // closer
		wg.Wait()
		close(resCh)
	}()

	// Collate into ordinal order. Everything downstream of this loop —
	// sinks, Results, the fail-fast error — sees the serial-order sequence.
	coll := NewCollator[Result](0)
	var firstErr error
	aborted := false
	for res := range resCh {
		ctr.record(res)
		for _, ordered := range coll.Add(res.Ordinal, res) {
			if aborted {
				continue
			}
			out.Results = append(out.Results, ordered)
			for _, s := range r.Sinks {
				s.Result(ordered)
			}
			if ordered.Err != nil && r.FailFast {
				firstErr = &TrialError{
					Campaign: ordered.Campaign,
					Point:    ordered.Point,
					Index:    ordered.Index,
					Seed:     ordered.Seed,
					Err:      ordered.Err,
				}
				aborted = true
				abort()
			}
		}
	}

	out.Metrics = ctr.snapshot(workers, time.Since(start))
	for _, s := range r.Sinks {
		s.Finish(out.Metrics)
	}
	if firstErr == nil {
		if err := ctx.Err(); err != nil {
			return out, err
		}
	}
	return out, firstErr
}

// warmSlot caches one point's warmed environment on a worker. A failed
// warmup is cached too: every trial of the point receives the same error
// instead of re-warming (a deterministic warmup would fail identically).
type warmSlot struct {
	valid bool
	point string
	value any
	err   error
}

// runWarmup builds one point's warmed environment with panic recovery.
func runWarmup(t Trial, ctx context.Context) (slot warmSlot) {
	slot = warmSlot{valid: true, point: t.Point}
	defer func() {
		if v := recover(); v != nil {
			slot.value = nil
			slot.err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	slot.value, slot.err = t.warmup(Warmup{
		Campaign: t.Campaign,
		Point:    t.Point,
		Seed:     t.warmSeed,
		Arena:    t.Arena,
		Ctx:      ctx,
	})
	return slot
}

// runTrial runs one trial with retries, panic recovery and the deadline.
func (r *Runner) runTrial(worker int, t Trial, ctr *counters) Result {
	res := Result{
		Campaign: t.Campaign,
		Point:    t.Point,
		Index:    t.Index,
		Ordinal:  t.Ordinal,
		Seed:     t.Seed,
		Worker:   worker,
	}
	start := time.Now()
	for attempt := 0; ; attempt++ {
		if r.CollectObs {
			t.Obs = obs.NewHub() // fresh hub per attempt: retries don't double-count
		}
		res.Value, res.Err, res.Panicked, res.TimedOut = r.attempt(t)
		res.Attempts = attempt + 1
		if t.Obs != nil && !res.TimedOut {
			res.Obs = t.Obs.Snapshot()
		}
		if res.TimedOut {
			// The abandoned goroutine may still be using the arena; any
			// retry below must not share it.
			t.Arena = nil
		}
		if res.Err == nil || attempt >= r.Retries {
			break
		}
		if t.Ctx != nil && t.Ctx.Err() != nil {
			break // a cancelled trial would only fail identically again
		}
		ctr.retried.Add(1)
	}
	res.Elapsed = time.Since(start)
	return res
}

// attempt runs the trial function once, under the deadline if one is set.
func (r *Runner) attempt(t Trial) (value any, err error, panicked, timedOut bool) {
	if r.Timeout <= 0 {
		value, err, panicked = runProtected(t)
		return value, err, panicked, false
	}
	type attemptResult struct {
		value    any
		err      error
		panicked bool
	}
	done := make(chan attemptResult, 1)
	go func() {
		v, e, p := runProtected(t)
		done <- attemptResult{v, e, p}
	}()
	timer := time.NewTimer(r.Timeout)
	defer timer.Stop()
	select {
	case out := <-done:
		return out.value, out.err, out.panicked, false
	case <-timer.C:
		return nil, fmt.Errorf("%w (limit %v)", ErrTimeout, r.Timeout), false, true
	}
}

// runProtected converts a panicking trial into a failed result.
func runProtected(t Trial) (value any, err error, panicked bool) {
	defer func() {
		if v := recover(); v != nil {
			value = nil
			panicked = true
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	value, err = t.run(t)
	return value, err, false
}
