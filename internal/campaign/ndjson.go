package campaign

import (
	"encoding/json"
	"io"
)

// NDJSON streams a campaign as newline-delimited JSON containing only
// deterministic fields: unlike JSONL it omits wall-clock measurements
// (elapsed, worker, campaign metrics), so for a deterministic TrialFunc
// the emitted byte stream is identical at any worker count and across
// repeated runs of the same spec. The serving layer relies on this to
// hand out cached result streams that are byte-for-byte equal to a live
// run; `cmd/experiments -ndjson` emits the same stream for offline
// comparison.
//
// Stream shape: one "campaign" header line, one "result" line per trial
// in ordinal order, one "end" trailer with the deterministic tallies.
type NDJSON struct {
	enc *json.Encoder
	err error
	ok  int
	bad int
}

// NewNDJSON returns a sink writing the deterministic stream to w.
func NewNDJSON(w io.Writer) *NDJSON {
	return &NDJSON{enc: json.NewEncoder(w)}
}

// Err returns the first write/encode error, if any (the stream is
// telemetry; it never fails the campaign).
func (n *NDJSON) Err() error { return n.err }

func (n *NDJSON) emit(v any) {
	if n.err == nil {
		n.err = n.enc.Encode(v)
	}
}

// ndjsonHeader is the stream's first line; ndjsonEnd its last. The
// NDJSON sink and the exported NDJSONHeader/NDJSONTrailer helpers share
// these structs so a frame composed outside a live campaign — the
// distributed fabric writes one global header over many merged shard
// streams — cannot drift from the bytes the sink emits.
type ndjsonHeader struct {
	Kind     string `json:"kind"`
	Campaign string `json:"campaign"`
	SeedBase uint64 `json:"seed_base"`
	Points   int    `json:"points"`
	Trials   int    `json:"trials"`
}

type ndjsonEnd struct {
	Kind   string `json:"kind"`
	Trials int    `json:"trials"`
	Ok     int    `json:"ok"`
	Failed int    `json:"failed"`
}

// NDJSONHeader renders the "campaign" header line (newline included)
// exactly as the sink writes it for a campaign with this identity.
func NDJSONHeader(name string, seedBase uint64, points, totalTrials int) []byte {
	return mustLine(ndjsonHeader{"campaign", name, seedBase, points, totalTrials})
}

// NDJSONTrailer renders the "end" trailer line (newline included) exactly
// as the sink writes it for these tallies.
func NDJSONTrailer(trials, ok, failed int) []byte {
	return mustLine(ndjsonEnd{"end", trials, ok, failed})
}

// mustLine marshals one NDJSON line; the structs above cannot fail to
// marshal.
func mustLine(v any) []byte {
	raw, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return append(raw, '\n')
}

// Start implements Sink.
func (n *NDJSON) Start(spec *Spec, totalTrials int) {
	n.ok, n.bad = 0, 0
	n.emit(ndjsonHeader{"campaign", spec.Name, spec.SeedBase, len(spec.Points), totalTrials})
}

// Result implements Sink. The line bytes are defined by the shared
// Record model, so the binary codec's NDJSON transcode cannot drift
// from what a live sink writes.
func (n *NDJSON) Result(r Result) {
	if r.Err == nil {
		n.ok++
	} else {
		n.bad++
	}
	n.emit(NewRecord(r).line())
}

// Finish implements Sink. Only the deterministic per-result tallies are
// written; the wall-clock Metrics are deliberately dropped.
func (n *NDJSON) Finish(Metrics) {
	n.emit(ndjsonEnd{"end", n.ok + n.bad, n.ok, n.bad})
}
