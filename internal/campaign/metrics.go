package campaign

import (
	"sync/atomic"
	"time"
)

// Metrics summarises a completed campaign run.
//
// Counter fields reflect the trials whose results were collected; under a
// FailFast abort, trials still in flight when the campaign stopped are
// counted too (their results are simply not delivered to sinks), so
// counters — unlike Results — are not deterministic across worker counts.
type Metrics struct {
	// Workers is the pool size the campaign ran with.
	Workers int `json:"workers"`
	// Trials counts completed trial results (success or failure).
	Trials int `json:"trials"`
	// Succeeded / Failed partition Trials.
	Succeeded int `json:"succeeded"`
	Failed    int `json:"failed"`
	// Panicked counts trials whose final attempt panicked (subset of Failed).
	Panicked int `json:"panicked"`
	// TimedOut counts trials whose final attempt hit the deadline (subset
	// of Failed).
	TimedOut int `json:"timed_out"`
	// Retried counts extra attempts consumed across all trials.
	Retried int `json:"retried"`
	// Warmups counts point-warmup invocations across all workers (0 when
	// no point declares a Warmup). Each worker warms each point at most
	// once, so this is bounded by workers × points — a large value next to
	// a small Trials means warm-world reuse is not paying for itself.
	Warmups int `json:"warmups,omitempty"`
	// Wall is the campaign's wall-clock duration.
	Wall time.Duration `json:"wall_ns"`
	// Busy is the summed per-trial wall time across all workers.
	Busy time.Duration `json:"busy_ns"`
}

// Utilization returns Busy/(Wall·Workers) — the fraction of pool capacity
// spent inside trials. 0 when the campaign did not run.
func (m Metrics) Utilization() float64 {
	if m.Wall <= 0 || m.Workers <= 0 {
		return 0
	}
	return float64(m.Busy) / (float64(m.Wall) * float64(m.Workers))
}

// counters accumulates metrics during a run. retried is bumped from worker
// goroutines (hence atomic); everything else is recorded by the collator
// goroutine only.
type counters struct {
	trials, succeeded, failed int
	panicked, timedOut        int
	busy                      time.Duration
	retried                   atomic.Int64
	warmups                   atomic.Int64
}

// record tallies one completed result.
func (c *counters) record(r Result) {
	c.trials++
	if r.Err == nil {
		c.succeeded++
	} else {
		c.failed++
	}
	if r.Panicked {
		c.panicked++
	}
	if r.TimedOut {
		c.timedOut++
	}
	c.busy += r.Elapsed
}

// snapshot freezes the counters into a Metrics.
func (c *counters) snapshot(workers int, wall time.Duration) Metrics {
	return Metrics{
		Workers:   workers,
		Trials:    c.trials,
		Succeeded: c.succeeded,
		Failed:    c.failed,
		Panicked:  c.panicked,
		TimedOut:  c.timedOut,
		Retried:   int(c.retried.Load()),
		Warmups:   int(c.warmups.Load()),
		Wall:      wall,
		Busy:      c.busy,
	}
}
