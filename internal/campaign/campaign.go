// Package campaign is a worker-pool execution engine for trial sweeps: it
// fans independent simulation trials out across bounded workers while
// keeping results bit-for-bit deterministic regardless of worker count or
// completion order.
//
// Determinism rests on two rules. First, every trial derives its own
// random stream from (SeedBase, point label, trial index) — never from
// shared mutable state — so a trial computes the same value no matter
// which worker runs it (sim.RNG is not goroutine-safe; giving each trial
// its own stream is also what makes the fan-out race-free). Second, the
// runner collates results into ordinal order before anything observes
// them: sinks, the Results slice and fail-fast error selection all see the
// same sequence a serial loop would have produced.
//
// A panicking trial is recovered and recorded as a failed Result instead
// of killing the campaign, and a per-trial deadline turns runaway
// simulations into TimedOut results.
package campaign

import (
	"context"
	"errors"
	"fmt"

	"injectable/internal/obs"
	"injectable/internal/sim"
)

// TrialFunc executes one trial. It must derive all randomness from the
// trial's Seed or RNG and must not share mutable state with other trials;
// the runner may invoke it from any worker goroutine.
type TrialFunc func(t Trial) (any, error)

// Warmup identifies one warmup invocation: the environment a worker is
// about to build and reuse across the trials it runs at one point.
type Warmup struct {
	// Campaign is the spec's Name; Point the owning point's Label.
	Campaign string
	Point    string
	// Seed is the point's derived warmup seed (DeriveWarmSeed unless the
	// warmup function derives its own — trial seeds never collide with it).
	Seed uint64
	// Arena is the worker-local arena the warmed environment should be
	// built on; it is the same arena the point's trials will see.
	Arena *sim.Arena
	// Ctx is the campaign's context.
	Ctx context.Context
}

// WarmupFunc builds a point's warmed environment — typically a simulated
// world advanced to a snapshot the point's trials fork from. It runs on a
// worker goroutine at most once per (worker, point): the worker caches the
// value and hands it to every trial of the point via Trial.Warm. The value
// is worker-local, so the trial functions of one worker may mutate it
// (fork, run, restore) without synchronisation.
type WarmupFunc func(u Warmup) (any, error)

// DeriveWarmSeed is the default warmup-seed derivation, a sibling stream
// of the point's trial seeds ("warm" vs "trial"/i) so warmup randomness
// never overlaps any trial's.
func DeriveWarmSeed(seedBase uint64, point string) uint64 {
	return sim.NewRNG(seedBase).Child(point).Child("warm").Seed()
}

// Point is one configuration within a campaign: a label, a trial count and
// the function that runs one trial of it.
type Point struct {
	// Label names the configuration ("hopInterval=75", "clean@0.25", …).
	// Labels should be unique within a Spec.
	Label string
	// Trials is the number of independent trials at this point.
	Trials int
	// Seed optionally overrides the seed for trial index i. When nil the
	// seed is DeriveSeed(spec.SeedBase, Label, i). The experiments layer
	// uses this to keep its historical linear seed layout (and therefore
	// byte-identical tables) while still running under the pool.
	Seed func(index int) uint64
	// Warmup, when set, builds a reusable environment once per (worker,
	// point); every trial of the point receives it via Trial.Warm. Optional.
	Warmup WarmupFunc
	// WarmSeed optionally overrides the warmup seed (0 keeps the default
	// DeriveWarmSeed(spec.SeedBase, Label)).
	WarmSeed uint64
	// Run executes one trial. Required.
	Run TrialFunc
}

// Spec describes a whole campaign: an ordered list of points whose trials
// are all independent of each other.
type Spec struct {
	// Name identifies the campaign in sinks and errors.
	Name string
	// SeedBase is the root of every derived trial seed.
	SeedBase uint64
	// Points are run in order; trial ordinals are assigned point-major.
	Points []Point
}

// TotalTrials returns the number of trials across all points.
func (s *Spec) TotalTrials() int {
	n := 0
	for _, p := range s.Points {
		if p.Trials > 0 {
			n += p.Trials
		}
	}
	return n
}

// validate reports the first structural problem with the spec.
func (s *Spec) validate() error {
	for i, p := range s.Points {
		if p.Run == nil {
			return fmt.Errorf("campaign %q: point %d (%q) has no Run", s.Name, i, p.Label)
		}
	}
	return nil
}

// Trial identifies one unit of work handed to a TrialFunc.
type Trial struct {
	// Campaign is the spec's Name.
	Campaign string
	// Point is the owning point's Label.
	Point string
	// Index is the trial's index within its point.
	Index int
	// Ordinal is the trial's global position in the campaign (point-major);
	// results are delivered to sinks in ordinal order.
	Ordinal int
	// Seed is the trial's derived seed.
	Seed uint64
	// Obs is the trial's private observability hub, non-nil only when the
	// runner's CollectObs is set. The trial function threads it into the
	// world it builds (host.WorldConfig.Obs); the runner snapshots it into
	// Result.Obs when the trial returns. A nil Obs is safe to plumb
	// everywhere — all hub methods no-op on nil.
	Obs *obs.Hub
	// Arena is the worker-local simulation arena, reused across the trials
	// a worker runs so each trial recycles its predecessor's scheduler
	// events and frame buffers instead of re-allocating them. Trial
	// functions thread it into the world they build
	// (host.WorldConfig.Arena). May be nil (fresh allocations per trial);
	// reuse never changes trial results — the arena carries no RNG or
	// simulation state across trials.
	Arena *sim.Arena
	// Ctx is the campaign's context (never nil under RunContext). Trial
	// functions should observe it — directly or by threading it into the
	// world they drive — so an in-flight trial aborts promptly when the
	// campaign is cancelled or its deadline expires; a trial that ignores
	// it still stops the campaign, just one full trial later.
	Ctx context.Context
	// Warm is the worker's cached warmed environment for this trial's
	// point, non-nil only when the point declares a Warmup and it
	// succeeded. It is owned by this worker: the trial function may fork
	// and mutate it without synchronisation, but must leave it reusable
	// for the point's next trial on the same worker.
	Warm any
	// WarmErr reports a failed (or panicked) warmup for this trial's
	// point; when set, Warm is nil. The error is handed to the trial
	// function unwrapped so it can fail exactly as a self-warming trial
	// would, keeping output streams byte-identical across execution modes.
	WarmErr error

	run      TrialFunc
	warmup   WarmupFunc
	warmSeed uint64
}

// RNG returns a fresh deterministic stream owned exclusively by this
// trial. sim.RNG is not goroutine-safe; per-trial streams are what make
// the campaign's fan-out both race-free and order-independent.
func (t Trial) RNG() *sim.RNG { return sim.NewRNG(t.Seed) }

// DeriveSeed is the default trial-seed derivation: an FNV-mixed stream
// keyed by (seedBase, point, index) via sim.RNG's child mechanism, so two
// points (or two trials) never share a stream.
func DeriveSeed(seedBase uint64, point string, index int) uint64 {
	return sim.NewRNG(seedBase).Child(point).ChildN("trial", index).Seed()
}

// flatten expands the spec into the ordinal-ordered trial list.
func flatten(s *Spec) []Trial {
	trials := make([]Trial, 0, s.TotalTrials())
	ordinal := 0
	for _, p := range s.Points {
		warmSeed := p.WarmSeed
		if warmSeed == 0 {
			warmSeed = DeriveWarmSeed(s.SeedBase, p.Label)
		}
		for i := 0; i < p.Trials; i++ {
			seed := DeriveSeed(s.SeedBase, p.Label, i)
			if p.Seed != nil {
				seed = p.Seed(i)
			}
			trials = append(trials, Trial{
				Campaign: s.Name,
				Point:    p.Label,
				Index:    i,
				Ordinal:  ordinal,
				Seed:     seed,
				run:      p.Run,
				warmup:   p.Warmup,
				warmSeed: warmSeed,
			})
			ordinal++
		}
	}
	return trials
}

// ErrTimeout marks a trial that exceeded the runner's per-trial deadline.
var ErrTimeout = errors.New("campaign: trial deadline exceeded")

// TrialError locates a failed trial within its campaign; it is what a
// fail-fast run returns.
type TrialError struct {
	Campaign string
	Point    string
	Index    int
	Seed     uint64
	Err      error
}

// Error implements error.
func (e *TrialError) Error() string {
	return fmt.Sprintf("%s: point %s trial %d (seed %d): %v",
		e.Campaign, e.Point, e.Index, e.Seed, e.Err)
}

// Unwrap exposes the underlying trial error.
func (e *TrialError) Unwrap() error { return e.Err }

// PanicError wraps a value recovered from a panicking trial.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string { return fmt.Sprintf("trial panicked: %v", e.Value) }
