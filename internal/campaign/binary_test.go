package campaign

import (
	"bytes"
	"errors"
	"hash/crc32"
	"io"
	"strings"
	"testing"
	"unsafe"
)

// crcOf seals a frame checksum the way appendFrame does.
func crcOf(typ byte, payload []byte) uint32 {
	return crc32.Update(crc32.Checksum([]byte{typ}, crcTable), crcTable, payload)
}

// mixedSpec exercises every record shape the codec must carry: plain
// values, nil values, failures with error strings, and values that only
// marshal through the fmt fallback.
func mixedSpec(points, trials int) *Spec {
	spec := &Spec{Name: "mixed", SeedBase: 99}
	for p := 0; p < points; p++ {
		p := p
		spec.Points = append(spec.Points, Point{
			Label:  "point-" + string(rune('a'+p)),
			Trials: trials,
			Run: func(t Trial) (any, error) {
				switch t.Index % 4 {
				case 0:
					return map[string]any{"success": t.Seed%2 == 0, "attempts": int(t.Seed%7) + 1}, nil
				case 1:
					return nil, errors.New("injection missed the anchor")
				case 2:
					return nil, nil
				default:
					return make(chan int), nil // only marshals via the fmt fallback
				}
			},
		})
	}
	return spec
}

// runSinks runs spec once through both sinks and returns their streams.
func runSinks(t *testing.T, spec *Spec, workers int) (ndjson, bin []byte) {
	t.Helper()
	var nb, bb bytes.Buffer
	ns, bs := NewNDJSON(&nb), NewBinary(&bb)
	r := &Runner{Workers: workers, Sinks: []Sink{ns, bs}}
	if _, err := r.Run(spec); err != nil {
		t.Fatalf("run: %v", err)
	}
	if ns.Err() != nil || bs.Err() != nil {
		t.Fatalf("sink errors: ndjson=%v binary=%v", ns.Err(), bs.Err())
	}
	return nb.Bytes(), bb.Bytes()
}

// detSpec is mixedSpec minus the fmt-fallback case: a channel value
// renders as its address, which is deterministic within one run (the
// bijection tests rely on that) but not across runs.
func detSpec(points, trials int) *Spec {
	spec := mixedSpec(points, trials)
	for i := range spec.Points {
		inner := spec.Points[i].Run
		spec.Points[i].Run = func(t Trial) (any, error) {
			if t.Index%4 == 3 {
				return "fallback-free", nil
			}
			return inner(t)
		}
	}
	return spec
}

func TestBinaryDeterministicAcrossWorkerCounts(t *testing.T) {
	var want []byte
	for _, workers := range []int{1, 2, 8} {
		_, bin := runSinks(t, detSpec(3, 8), workers)
		if want == nil {
			want = bin
			continue
		}
		if !bytes.Equal(want, bin) {
			t.Fatalf("workers=%d: binary stream differs from workers=1", workers)
		}
	}
}

// TestBinaryNDJSONBijection is the tentpole's core property: transcoding
// the binary stream yields exactly the bytes the live NDJSON sink wrote,
// and transcoding those back yields exactly the live binary stream.
func TestBinaryNDJSONBijection(t *testing.T) {
	ndjson, bin := runSinks(t, mixedSpec(3, 8), 4)

	var gotNDJSON bytes.Buffer
	if err := TranscodeBinaryToNDJSON(&gotNDJSON, bin); err != nil {
		t.Fatalf("binary→ndjson: %v", err)
	}
	if !bytes.Equal(gotNDJSON.Bytes(), ndjson) {
		t.Fatalf("binary→ndjson transcode differs from live NDJSON sink:\ngot  %q\nwant %q",
			gotNDJSON.Bytes(), ndjson)
	}

	var gotBin bytes.Buffer
	if err := TranscodeNDJSONToBinary(&gotBin, ndjson); err != nil {
		t.Fatalf("ndjson→binary: %v", err)
	}
	if !bytes.Equal(gotBin.Bytes(), bin) {
		t.Fatalf("ndjson→binary transcode differs from live Binary sink")
	}
}

func TestBinaryDecodeRoundTrip(t *testing.T) {
	_, bin := runSinks(t, mixedSpec(2, 6), 3)
	info, recs, tallies, err := DecodeBinary(bin)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if info.Name != "mixed" || info.SeedBase != 99 || info.Points != 2 || info.Trials != 12 {
		t.Fatalf("header = %+v", info)
	}
	if len(recs) != 12 || tallies.Trials != 12 {
		t.Fatalf("got %d records, tallies %+v", len(recs), tallies)
	}
	ok, failed := 0, 0
	for _, rec := range recs {
		if rec.OK {
			ok++
		} else {
			failed++
			if rec.Err == "" {
				t.Fatalf("failed record without error string: %+v", rec)
			}
		}
	}
	if ok != tallies.OK || failed != tallies.Failed {
		t.Fatalf("tallies %+v, counted ok=%d failed=%d", tallies, ok, failed)
	}
	if !bytes.Equal(EncodeBinary(info, recs, tallies), bin) {
		t.Fatalf("EncodeBinary(DecodeBinary(stream)) != stream")
	}
}

func TestBinaryScanAliasesAndInterns(t *testing.T) {
	_, bin := runSinks(t, mixedSpec(1, 8), 2)
	var prevPoint string
	shared := 0
	_, _, err := ScanBinary(bin, func(rec Record) error {
		if prevPoint != "" && unsafe.StringData(prevPoint) == unsafe.StringData(rec.Point) {
			shared++
		}
		prevPoint = rec.Point
		return nil
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if shared == 0 {
		t.Fatalf("repeated point labels were not interned")
	}
}

func TestSplitBinaryStream(t *testing.T) {
	_, bin := runSinks(t, mixedSpec(2, 4), 2)
	info, payload, tallies, err := SplitBinaryStream(bin)
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	// Header + payload + trailer reassembles the exact stream.
	whole := BinaryHeader(info.Name, info.SeedBase, info.Points, info.Trials)
	whole = append(whole, payload...)
	whole = append(whole, BinaryTrailer(tallies.Trials, tallies.OK, tallies.Failed)...)
	if !bytes.Equal(whole, bin) {
		t.Fatalf("header+payload+trailer != original stream")
	}
	// An empty campaign splits to an empty payload.
	empty := append(BinaryHeader("e", 1, 0, 0), BinaryTrailer(0, 0, 0)...)
	if _, p, _, err := SplitBinaryStream(empty); err != nil || len(p) != 0 {
		t.Fatalf("empty split: payload=%d err=%v", len(p), err)
	}
}

func TestBinaryTruncationAndCorruptionError(t *testing.T) {
	_, bin := runSinks(t, mixedSpec(1, 4), 1)
	// Every strict prefix must fail to decode — no tolerated torn tail.
	for cut := 0; cut < len(bin); cut++ {
		if _, _, _, err := DecodeBinary(bin[:cut]); !errors.Is(err, ErrBinaryCorrupt) {
			t.Fatalf("truncation at %d: err = %v, want ErrBinaryCorrupt", cut, err)
		}
	}
	// Any single flipped bit must fail (CRC, magic or structure).
	for i := 0; i < len(bin); i++ {
		mut := append([]byte(nil), bin...)
		mut[i] ^= 0x40
		if _, _, _, err := DecodeBinary(mut); err == nil {
			t.Fatalf("bit flip at byte %d decoded cleanly", i)
		}
	}
	// Trailing garbage after the end frame must fail.
	if _, _, _, err := DecodeBinary(append(append([]byte(nil), bin...), 0x00)); !errors.Is(err, ErrBinaryCorrupt) {
		t.Fatalf("trailing byte: err = %v, want ErrBinaryCorrupt", err)
	}
}

// chunkReader yields its payload in fixed-size chunks to force mid-frame
// splits through the streaming transcoder.
type chunkReader struct {
	data []byte
	n    int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if len(c.data) == 0 {
		return 0, io.EOF
	}
	n := c.n
	if n > len(c.data) {
		n = len(c.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, c.data[:n])
	c.data = c.data[n:]
	return n, nil
}

func TestBinaryNDJSONReaderStreams(t *testing.T) {
	ndjson, bin := runSinks(t, mixedSpec(3, 8), 4)
	for _, chunk := range []int{1, 3, 7, 64, 1 << 20} {
		got, err := io.ReadAll(NewBinaryNDJSONReader(&chunkReader{data: bin, n: chunk}))
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		if !bytes.Equal(got, ndjson) {
			t.Fatalf("chunk=%d: streamed transcode differs from live NDJSON", chunk)
		}
	}
	// A source that ends mid-stream is an error, not silent truncation.
	_, err := io.ReadAll(NewBinaryNDJSONReader(&chunkReader{data: bin[:len(bin)-3], n: 8}))
	if !errors.Is(err, ErrBinaryCorrupt) {
		t.Fatalf("truncated live stream: err = %v, want ErrBinaryCorrupt", err)
	}
}

func TestBinaryRejectsNonCanonicalEncodings(t *testing.T) {
	rec := Record{Point: "p0", Trial: 1, Seed: 7, OK: true}
	stream := BinaryHeader("c", 1, 1, 1)
	stream = AppendBinaryRecord(stream, rec)
	stream = append(stream, BinaryTrailer(1, 1, 0)...)
	if _, _, _, err := DecodeBinary(stream); err != nil {
		t.Fatalf("canonical stream rejected: %v", err)
	}

	// Re-frame the record with a non-minimal length prefix (0x80 0x00
	// padding style): decoder must reject it, otherwise decode∘encode
	// would not be the identity.
	payload := AppendBinaryRecord(nil, rec)
	// payload = full frame; rebuild with a two-byte uvarint length.
	inner := payload[2 : len(payload)-4] // strip type, 1-byte len, CRC
	bad := append([]byte{frameResult, byte(0x80 | len(inner)), 0x00}, inner...)
	crc := crcOf(frameResult, inner)
	bad = append(bad, byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24))
	mal := BinaryHeader("c", 1, 1, 1)
	mal = append(mal, bad...)
	mal = append(mal, BinaryTrailer(1, 1, 0)...)
	if _, _, _, err := DecodeBinary(mal); !errors.Is(err, ErrBinaryCorrupt) {
		t.Fatalf("non-canonical uvarint accepted: %v", err)
	}
}

func TestTranscodeNDJSONToBinaryRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"",
		"not json\n",
		`{"kind":"campaign"}` + "\n", // no trailer
		`{"kind":"end","trials":0,"ok":0,"failed":0}` + "\n" + `{"kind":"campaign"}` + "\n", // reversed
	} {
		if err := TranscodeNDJSONToBinary(io.Discard, []byte(in)); err == nil {
			t.Fatalf("garbage NDJSON %q transcoded cleanly", in)
		}
	}
	// A result line of the wrong kind inside an otherwise valid stream.
	in := strings.Join([]string{
		`{"kind":"campaign","campaign":"c","seed_base":1,"points":1,"trials":1}`,
		`{"kind":"metrics"}`,
		`{"kind":"end","trials":1,"ok":1,"failed":0}`,
	}, "\n") + "\n"
	if err := TranscodeNDJSONToBinary(io.Discard, []byte(in)); err == nil {
		t.Fatalf("foreign line kind transcoded cleanly")
	}
}
