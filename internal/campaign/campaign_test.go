package campaign

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// hashSpec is a cheap deterministic campaign: each trial draws from its
// private stream and returns a value that depends only on its identity.
func hashSpec(points, trials int) *Spec {
	spec := &Spec{Name: "hash", SeedBase: 42}
	for p := 0; p < points; p++ {
		spec.Points = append(spec.Points, Point{
			Label:  fmt.Sprintf("p%d", p),
			Trials: trials,
			Run: func(t Trial) (any, error) {
				rng := t.RNG()
				v := t.Seed
				for i := 0; i < 100; i++ {
					v ^= rng.Uint64()
				}
				return v, nil
			},
		})
	}
	return spec
}

// deterministicFields strips the measurement fields so runs can be compared.
func deterministicFields(results []Result) []Result {
	out := append([]Result(nil), results...)
	for i := range out {
		out[i].Elapsed = 0
		out[i].Worker = 0
	}
	return out
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	var want []Result
	for _, workers := range []int{1, 2, 8} {
		r := &Runner{Workers: workers}
		out, err := r.Run(hashSpec(4, 10))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out.Results) != 40 {
			t.Fatalf("workers=%d: %d results", workers, len(out.Results))
		}
		got := deterministicFields(out.Results)
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: results differ from serial run", workers)
		}
	}
}

func TestResultsDeliveredInOrdinalOrder(t *testing.T) {
	var seen []int
	r := &Runner{Workers: 8, Sinks: []Sink{OnResult(func(res Result) {
		seen = append(seen, res.Ordinal)
	})}}
	if _, err := r.Run(hashSpec(3, 9)); err != nil {
		t.Fatal(err)
	}
	for i, ord := range seen {
		if ord != i {
			t.Fatalf("sink saw ordinal %d at position %d", ord, i)
		}
	}
	if len(seen) != 27 {
		t.Fatalf("sink saw %d results", len(seen))
	}
}

func TestPanicIsolation(t *testing.T) {
	spec := &Spec{Name: "panicky", SeedBase: 1, Points: []Point{{
		Label:  "p",
		Trials: 20,
		Run: func(t Trial) (any, error) {
			if t.Index == 7 {
				panic("simulated world exploded")
			}
			return t.Index, nil
		},
	}}}
	r := &Runner{Workers: 4}
	out, err := r.Run(spec)
	if err != nil {
		t.Fatalf("campaign must survive a panicking trial: %v", err)
	}
	if len(out.Results) != 20 {
		t.Fatalf("lost trials: %d/20 results", len(out.Results))
	}
	if out.Metrics.Trials != 20 || out.Metrics.Failed != 1 || out.Metrics.Panicked != 1 ||
		out.Metrics.Succeeded != 19 {
		t.Fatalf("metrics = %+v", out.Metrics)
	}
	bad := out.Results[7]
	if !bad.Panicked || bad.Err == nil {
		t.Fatalf("trial 7 not reported as panicked: %+v", bad)
	}
	var pe *PanicError
	if !errors.As(bad.Err, &pe) {
		t.Fatalf("err %T, want *PanicError", bad.Err)
	}
	if pe.Value != "simulated world exploded" || len(pe.Stack) == 0 {
		t.Fatalf("panic detail lost: %+v", pe)
	}
	for i, res := range out.Results {
		if i != 7 && res.Err != nil {
			t.Errorf("healthy trial %d failed: %v", i, res.Err)
		}
	}
}

func TestFailFastIsDeterministic(t *testing.T) {
	spec := func() *Spec {
		return &Spec{Name: "ff", SeedBase: 1, Points: []Point{{
			Label:  "p",
			Trials: 30,
			Run: func(t Trial) (any, error) {
				if t.Index == 11 || t.Index == 23 {
					return nil, fmt.Errorf("boom at %d", t.Index)
				}
				return t.Index, nil
			},
		}}}
	}
	var wantErr string
	for _, workers := range []int{1, 8} {
		r := &Runner{Workers: workers, FailFast: true}
		out, err := r.Run(spec())
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		var te *TrialError
		if !errors.As(err, &te) || te.Index != 11 {
			t.Fatalf("workers=%d: err %v, want first in-order failure at trial 11", workers, err)
		}
		if len(out.Results) != 12 {
			t.Fatalf("workers=%d: %d results, want 12 (0..11)", workers, len(out.Results))
		}
		if wantErr == "" {
			wantErr = err.Error()
		} else if err.Error() != wantErr {
			t.Fatalf("workers=%d: error %q differs from serial %q", workers, err, wantErr)
		}
	}
}

func TestTrialTimeout(t *testing.T) {
	spec := &Spec{Name: "slow", SeedBase: 1, Points: []Point{{
		Label:  "p",
		Trials: 3,
		Run: func(t Trial) (any, error) {
			if t.Index == 1 {
				time.Sleep(5 * time.Second)
			}
			return t.Index, nil
		},
	}}}
	r := &Runner{Workers: 3, Timeout: 50 * time.Millisecond}
	start := time.Now()
	out, err := r.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("deadline did not cut the slow trial loose")
	}
	slow := out.Results[1]
	if !slow.TimedOut || !errors.Is(slow.Err, ErrTimeout) {
		t.Fatalf("slow trial = %+v", slow)
	}
	if out.Metrics.TimedOut != 1 || out.Metrics.Failed != 1 {
		t.Fatalf("metrics = %+v", out.Metrics)
	}
}

func TestRetries(t *testing.T) {
	var mu sync.Mutex
	calls := map[int]int{}
	spec := &Spec{Name: "flaky", SeedBase: 1, Points: []Point{{
		Label:  "p",
		Trials: 6,
		Run: func(t Trial) (any, error) {
			mu.Lock()
			calls[t.Index]++
			n := calls[t.Index]
			mu.Unlock()
			if t.Index%2 == 0 && n == 1 {
				return nil, errors.New("flaky first attempt")
			}
			return t.Index, nil
		},
	}}}
	r := &Runner{Workers: 2, Retries: 1}
	out, err := r.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if out.Metrics.Failed != 0 || out.Metrics.Retried != 3 {
		t.Fatalf("metrics = %+v", out.Metrics)
	}
	for _, res := range out.Results {
		wantAttempts := 1
		if res.Index%2 == 0 {
			wantAttempts = 2
		}
		if res.Attempts != wantAttempts || res.Err != nil {
			t.Fatalf("trial %d: %+v", res.Index, res)
		}
	}
}

func TestSeedDerivation(t *testing.T) {
	// Default: seeds come from (SeedBase, label, index) and differ across
	// both points and indices.
	seen := map[uint64]string{}
	for _, label := range []string{"a", "b"} {
		for i := 0; i < 5; i++ {
			s := DeriveSeed(1000, label, i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s/%d vs %s", label, i, prev)
			}
			seen[s] = fmt.Sprintf("%s/%d", label, i)
		}
	}
	// Point.Seed overrides the derivation (the experiments layer keeps its
	// historical linear layout this way).
	spec := &Spec{Name: "override", SeedBase: 7, Points: []Point{{
		Label:  "p",
		Trials: 3,
		Seed:   func(i int) uint64 { return 5000 + uint64(i) },
		Run:    func(t Trial) (any, error) { return t.Seed, nil },
	}}}
	out, err := (&Runner{Workers: 2}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range out.Results {
		if res.Seed != 5000+uint64(i) || res.Value.(uint64) != res.Seed {
			t.Fatalf("trial %d seed override broken: %+v", i, res)
		}
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	jl := NewJSONL(&buf)
	spec := &Spec{Name: "jl", SeedBase: 9, Points: []Point{{
		Label:  "p",
		Trials: 4,
		Run: func(t Trial) (any, error) {
			if t.Index == 2 {
				return nil, errors.New("nope")
			}
			return map[string]int{"attempts": t.Index + 1}, nil
		},
	}}}
	if _, err := (&Runner{Workers: 2, Sinks: []Sink{jl}}).Run(spec); err != nil {
		t.Fatal(err)
	}
	if jl.Err() != nil {
		t.Fatal(jl.Err())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 6 { // header + 4 results + metrics
		t.Fatalf("%d lines:\n%s", len(lines), buf.String())
	}
	var kinds []string
	for _, line := range lines {
		var probe struct {
			Kind string `json:"kind"`
			OK   bool   `json:"ok"`
			Err  string `json:"err"`
		}
		if err := json.Unmarshal([]byte(line), &probe); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		kinds = append(kinds, probe.Kind)
		if probe.Kind == "result" && !probe.OK && probe.Err != "nope" {
			t.Fatalf("failed result line lost its error: %q", line)
		}
	}
	want := []string{"campaign", "result", "result", "result", "result", "metrics"}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("line kinds = %v", kinds)
	}
}

func TestTrackerSnapshot(t *testing.T) {
	tr := NewTracker()
	spec := &Spec{Name: "trk", SeedBase: 3, Points: []Point{
		{Label: "a", Trials: 3, Run: func(t Trial) (any, error) { return nil, nil }},
		{Label: "b", Trials: 2, Run: func(t Trial) (any, error) { return nil, errors.New("x") }},
	}}
	if _, err := (&Runner{Workers: 4, Sinks: []Sink{tr}}).Run(spec); err != nil {
		t.Fatal(err)
	}
	s := tr.Snapshot()
	if s.Total != 5 || s.Done != 5 || s.Failed != 2 || s.Fraction() != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	if len(s.Points) != 2 || s.Points[0].Label != "a" || s.Points[1].Failed != 2 {
		t.Fatalf("point progress = %+v", s.Points)
	}
}

func TestMetricsUtilization(t *testing.T) {
	m := Metrics{Workers: 4, Wall: time.Second, Busy: 2 * time.Second}
	if u := m.Utilization(); u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %f", u)
	}
	if (Metrics{}).Utilization() != 0 {
		t.Fatal("zero metrics utilization")
	}
}

func TestEmptyAndInvalidSpecs(t *testing.T) {
	out, err := (&Runner{}).Run(&Spec{Name: "empty"})
	if err != nil || len(out.Results) != 0 || out.Metrics.Trials != 0 {
		t.Fatalf("empty spec: %v %+v", err, out)
	}
	_, err = (&Runner{}).Run(&Spec{Name: "bad", Points: []Point{{Label: "p", Trials: 1}}})
	if err == nil {
		t.Fatal("nil Run accepted")
	}
}
