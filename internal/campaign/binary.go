package campaign

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Binary trial-record codec.
//
// The NDJSON stream is the human-readable result format; this is the
// wire format: a length-prefixed, versioned, CRC-sealed binary stream
// carrying exactly the same deterministic fields, in the repo's
// hand-rolled bit-exact codec style (fixed magic, uvarint/fixed fields,
// per-record CRC). The two formats are a lossless bijection through
// Record — TranscodeBinaryToNDJSON(binary sink bytes) reproduces the
// NDJSON sink's bytes exactly, and vice versa — so the serving layer
// can run a campaign once into binary, cache the slab, and materialize
// NDJSON only for clients that ask for it.
//
// Stream layout:
//
//	magic "IBTR" | version byte 0x01 | frame*
//
// with exactly one header frame first, zero or more result frames, and
// exactly one end frame last. Each frame is
//
//	type byte | uvarint payloadLen | payload | u32 LE CRC-32C(type|payload)
//
// Payloads (all uvarints minimally encoded — the decoder rejects
// non-canonical encodings so decode∘encode is the identity):
//
//	header 'C': uvarint nameLen | name | u64 LE seedBase | uvarint points | uvarint trials
//	result 'R': uvarint pointLen | point | uvarint trial | u64 LE seed |
//	            flags byte | (uvarint errLen | err)? | (uvarint valueLen | value)?
//	end    'E': uvarint trials | uvarint ok | uvarint failed
//
// Flags: bit0 OK, bit1 panicked, bit2 timed-out, bit3 err present,
// bit4 value present; the err/value sections appear only when their
// flag is set, and never with zero length.
const (
	binaryMagic = "IBTR"
	// BinaryVersion is the codec version byte following the magic.
	BinaryVersion = 0x01

	frameHeader = 'C'
	frameResult = 'R'
	frameEnd    = 'E'

	flagOK       = 1 << 0
	flagPanicked = 1 << 1
	flagTimedOut = 1 << 2
	flagErr      = 1 << 3
	flagValue    = 1 << 4
	flagsKnown   = flagOK | flagPanicked | flagTimedOut | flagErr | flagValue

	// maxBinaryLabel bounds point/campaign label lengths; maxBinaryBlob
	// bounds err/value payloads. Both are sanity rails against hostile
	// length prefixes, far above anything a real campaign emits.
	maxBinaryLabel = 1 << 12
	maxBinaryBlob  = 1 << 28
)

// ErrBinaryCorrupt marks a binary trial stream that does not decode:
// truncation, a failed CRC, a non-canonical encoding or broken framing.
// Unlike the shard journal there is no tolerated torn tail — a result
// stream is complete or it is corrupt.
var ErrBinaryCorrupt = errors.New("campaign: binary trial stream corrupt")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// StreamInfo is the identity a stream header carries — the same fields
// as the NDJSON "campaign" line.
type StreamInfo struct {
	Name     string
	SeedBase uint64
	Points   int
	Trials   int
}

// StreamTallies is the end frame's deterministic tallies — the same
// fields as the NDJSON "end" line.
type StreamTallies struct {
	Trials int
	OK     int
	Failed int
}

// appendFrame seals one frame: type, length prefix, payload, CRC-32C.
func appendFrame(dst []byte, typ byte, payload []byte) []byte {
	dst = append(dst, typ)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	crc := crc32.Update(crc32.Checksum([]byte{typ}, crcTable), crcTable, payload)
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// BinaryHeader renders the stream prologue — magic, version and the
// header frame — exactly as the Binary sink writes it for a campaign
// with this identity. The fabric merger uses it to stamp one global
// header over many merged shard payloads, mirroring NDJSONHeader.
func BinaryHeader(name string, seedBase uint64, points, totalTrials int) []byte {
	payload := binary.AppendUvarint(nil, uint64(len(name)))
	payload = append(payload, name...)
	payload = binary.LittleEndian.AppendUint64(payload, seedBase)
	payload = binary.AppendUvarint(payload, uint64(points))
	payload = binary.AppendUvarint(payload, uint64(totalTrials))
	dst := append([]byte(binaryMagic), BinaryVersion)
	return appendFrame(dst, frameHeader, payload)
}

// BinaryTrailer renders the end frame for these tallies, mirroring
// NDJSONTrailer.
func BinaryTrailer(trials, ok, failed int) []byte {
	payload := binary.AppendUvarint(nil, uint64(trials))
	payload = binary.AppendUvarint(payload, uint64(ok))
	payload = binary.AppendUvarint(payload, uint64(failed))
	return appendFrame(nil, frameEnd, payload)
}

// AppendBinaryRecord appends one sealed result frame for rec.
func AppendBinaryRecord(dst []byte, rec Record) []byte {
	payload := binary.AppendUvarint(nil, uint64(len(rec.Point)))
	payload = append(payload, rec.Point...)
	payload = binary.AppendUvarint(payload, uint64(rec.Trial))
	payload = binary.LittleEndian.AppendUint64(payload, rec.Seed)
	flags := byte(0)
	if rec.OK {
		flags |= flagOK
	}
	if rec.Panicked {
		flags |= flagPanicked
	}
	if rec.TimedOut {
		flags |= flagTimedOut
	}
	if rec.Err != "" {
		flags |= flagErr
	}
	if len(rec.Value) > 0 {
		flags |= flagValue
	}
	payload = append(payload, flags)
	if rec.Err != "" {
		payload = binary.AppendUvarint(payload, uint64(len(rec.Err)))
		payload = append(payload, rec.Err...)
	}
	if len(rec.Value) > 0 {
		payload = binary.AppendUvarint(payload, uint64(len(rec.Value)))
		payload = append(payload, rec.Value...)
	}
	return appendFrame(dst, frameResult, payload)
}

// Binary is a Sink writing the deterministic binary stream to w. Like
// NDJSON it carries only deterministic fields, so the emitted bytes are
// identical at any worker count; the serving layer caches these slabs
// and replays them zero-copy.
type Binary struct {
	w   io.Writer
	err error
	buf []byte
	ok  int
	bad int
}

// NewBinary returns a sink writing the binary stream to w.
func NewBinary(w io.Writer) *Binary { return &Binary{w: w} }

// Err returns the first write error, if any (the stream is telemetry;
// it never fails the campaign).
func (b *Binary) Err() error { return b.err }

func (b *Binary) write(p []byte) {
	if b.err == nil {
		_, b.err = b.w.Write(p)
	}
}

// Start implements Sink.
func (b *Binary) Start(spec *Spec, totalTrials int) {
	b.ok, b.bad = 0, 0
	b.write(BinaryHeader(spec.Name, spec.SeedBase, len(spec.Points), totalTrials))
}

// Result implements Sink.
func (b *Binary) Result(r Result) {
	if r.Err == nil {
		b.ok++
	} else {
		b.bad++
	}
	b.buf = AppendBinaryRecord(b.buf[:0], NewRecord(r))
	b.write(b.buf)
}

// Finish implements Sink.
func (b *Binary) Finish(Metrics) {
	b.write(BinaryTrailer(b.ok+b.bad, b.ok, b.bad))
}

// corrupt builds an ErrBinaryCorrupt-wrapped error.
func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBinaryCorrupt, fmt.Sprintf(format, args...))
}

// errShortFrame reports that a frame is incomplete at the end of the
// buffer — distinct from corruption only for the streaming transcoder,
// which waits for more bytes; every whole-stream decoder converts it to
// ErrBinaryCorrupt.
var errShortFrame = errors.New("campaign: incomplete binary frame")

// parseUvarint decodes a minimally-encoded uvarint. Non-minimal
// encodings are rejected so every accepted stream re-encodes to the
// identical bytes.
func parseUvarint(b []byte) (uint64, int, error) {
	v, n := binary.Uvarint(b)
	if n == 0 {
		return 0, 0, errShortFrame
	}
	if n < 0 {
		return 0, 0, corrupt("overlong uvarint")
	}
	if n > 1 && v < 1<<(7*(n-1)) {
		return 0, 0, corrupt("non-canonical uvarint encoding")
	}
	return v, n, nil
}

// readUvarint is parseUvarint over a buffer known to be complete: a
// short read is corruption.
func readUvarint(b []byte) (uint64, int, error) {
	v, n, err := parseUvarint(b)
	if errors.Is(err, errShortFrame) {
		return 0, 0, corrupt("truncated uvarint")
	}
	return v, n, err
}

// parseFrame parses one frame at the head of b, verifying its CRC, and
// returns the frame type, its payload (aliasing b) and the total bytes
// consumed. A frame that extends past the end of b yields errShortFrame.
func parseFrame(b []byte) (typ byte, payload []byte, consumed int, err error) {
	if len(b) < 1 {
		return 0, nil, 0, errShortFrame
	}
	typ = b[0]
	size, n, err := parseUvarint(b[1:])
	if err != nil {
		return 0, nil, 0, err
	}
	head := 1 + n
	if size > maxBinaryBlob {
		return 0, nil, 0, corrupt("frame payload %d bytes exceeds %d", size, maxBinaryBlob)
	}
	if uint64(len(b)-head) < size+4 {
		return 0, nil, 0, errShortFrame
	}
	payload = b[head : head+int(size)]
	want := binary.LittleEndian.Uint32(b[head+int(size):])
	got := crc32.Update(crc32.Checksum([]byte{typ}, crcTable), crcTable, payload)
	if got != want {
		return 0, nil, 0, corrupt("frame CRC mismatch (type %q)", typ)
	}
	return typ, payload, head + int(size) + 4, nil
}

// readFrame is parseFrame over a buffer known to hold the whole stream:
// a short frame is truncation, which is corruption.
func readFrame(b []byte) (typ byte, payload []byte, consumed int, err error) {
	typ, payload, consumed, err = parseFrame(b)
	if errors.Is(err, errShortFrame) {
		return 0, nil, 0, corrupt("truncated frame")
	}
	return typ, payload, consumed, err
}

// decodeHeaderPayload parses a header frame's payload.
func decodeHeaderPayload(p []byte) (StreamInfo, error) {
	var info StreamInfo
	nameLen, n, err := readUvarint(p)
	if err != nil {
		return info, err
	}
	p = p[n:]
	if nameLen > maxBinaryLabel || uint64(len(p)) < nameLen {
		return info, corrupt("header name length %d out of range", nameLen)
	}
	info.Name = string(p[:nameLen])
	p = p[nameLen:]
	if len(p) < 8 {
		return info, corrupt("header truncated at seed base")
	}
	info.SeedBase = binary.LittleEndian.Uint64(p)
	p = p[8:]
	points, n, err := readUvarint(p)
	if err != nil {
		return info, err
	}
	p = p[n:]
	trials, n, err := readUvarint(p)
	if err != nil {
		return info, err
	}
	p = p[n:]
	if len(p) != 0 {
		return info, corrupt("%d trailing bytes in header frame", len(p))
	}
	if points > maxBinaryBlob || trials > maxBinaryBlob {
		return info, corrupt("header counts out of range (points %d, trials %d)", points, trials)
	}
	info.Points, info.Trials = int(points), int(trials)
	return info, nil
}

// decodeEndPayload parses an end frame's payload.
func decodeEndPayload(p []byte) (StreamTallies, error) {
	var t StreamTallies
	fields := [3]*int{&t.Trials, &t.OK, &t.Failed}
	for _, f := range fields {
		v, n, err := readUvarint(p)
		if err != nil {
			return t, err
		}
		if v > maxBinaryBlob {
			return t, corrupt("end tally %d out of range", v)
		}
		*f = int(v)
		p = p[n:]
	}
	if len(p) != 0 {
		return t, corrupt("%d trailing bytes in end frame", len(p))
	}
	return t, nil
}

// decodeResultPayload parses a result frame's payload. The record's
// Point is interned against prev when the label repeats (results arrive
// point-major, so runs of identical labels are the common case) and its
// Value aliases the payload — callers that retain records across calls
// must copy.
func decodeResultPayload(p []byte, prev *Record) (Record, error) {
	var rec Record
	pointLen, n, err := readUvarint(p)
	if err != nil {
		return rec, err
	}
	p = p[n:]
	if pointLen > maxBinaryLabel || uint64(len(p)) < pointLen {
		return rec, corrupt("result point length %d out of range", pointLen)
	}
	point := p[:pointLen]
	if prev != nil && prev.Point != "" && prev.Point == string(point) {
		rec.Point = prev.Point
	} else {
		rec.Point = string(point)
	}
	p = p[pointLen:]
	trial, n, err := readUvarint(p)
	if err != nil {
		return rec, err
	}
	if trial > maxBinaryBlob {
		return rec, corrupt("result trial index %d out of range", trial)
	}
	rec.Trial = int(trial)
	p = p[n:]
	if len(p) < 8 {
		return rec, corrupt("result truncated at seed")
	}
	rec.Seed = binary.LittleEndian.Uint64(p)
	p = p[8:]
	if len(p) < 1 {
		return rec, corrupt("result truncated at flags")
	}
	flags := p[0]
	p = p[1:]
	if flags&^byte(flagsKnown) != 0 {
		return rec, corrupt("unknown result flags %#x", flags)
	}
	rec.OK = flags&flagOK != 0
	rec.Panicked = flags&flagPanicked != 0
	rec.TimedOut = flags&flagTimedOut != 0
	if flags&flagErr != 0 {
		errLen, n, err := readUvarint(p)
		if err != nil {
			return rec, err
		}
		p = p[n:]
		if errLen == 0 || errLen > maxBinaryBlob || uint64(len(p)) < errLen {
			return rec, corrupt("result error length %d out of range", errLen)
		}
		rec.Err = string(p[:errLen])
		p = p[errLen:]
	}
	if flags&flagValue != 0 {
		valLen, n, err := readUvarint(p)
		if err != nil {
			return rec, err
		}
		p = p[n:]
		if valLen == 0 || valLen > maxBinaryBlob || uint64(len(p)) < valLen {
			return rec, corrupt("result value length %d out of range", valLen)
		}
		rec.Value = p[:valLen]
		p = p[valLen:]
	}
	if len(p) != 0 {
		return rec, corrupt("%d trailing bytes in result frame", len(p))
	}
	return rec, nil
}

// checkMagic validates and strips the stream prologue.
func checkMagic(stream []byte) ([]byte, error) {
	if len(stream) < len(binaryMagic)+1 {
		return nil, corrupt("stream shorter than its magic")
	}
	if string(stream[:len(binaryMagic)]) != binaryMagic {
		return nil, corrupt("bad magic %q", stream[:len(binaryMagic)])
	}
	if v := stream[len(binaryMagic)]; v != BinaryVersion {
		return nil, corrupt("unsupported version %d", v)
	}
	return stream[len(binaryMagic)+1:], nil
}

// ScanBinary walks a complete binary stream, calling fn for every
// result record in order, and returns the header identity and trailer
// tallies. Record.Value (and interned Point strings) alias the stream;
// fn must copy anything it retains. Any framing, CRC or structural
// violation — including truncation — returns an error wrapping
// ErrBinaryCorrupt, with fn never called past the violation.
func ScanBinary(stream []byte, fn func(rec Record) error) (StreamInfo, StreamTallies, error) {
	var info StreamInfo
	var tallies StreamTallies
	rest, err := checkMagic(stream)
	if err != nil {
		return info, tallies, err
	}
	typ, payload, n, err := readFrame(rest)
	if err != nil {
		return info, tallies, err
	}
	if typ != frameHeader {
		return info, tallies, corrupt("stream does not open with a header frame (type %q)", typ)
	}
	if info, err = decodeHeaderPayload(payload); err != nil {
		return info, tallies, err
	}
	rest = rest[n:]
	var prev Record
	for {
		if len(rest) == 0 {
			return info, tallies, corrupt("stream has no end frame")
		}
		typ, payload, n, err = readFrame(rest)
		if err != nil {
			return info, tallies, err
		}
		rest = rest[n:]
		switch typ {
		case frameResult:
			rec, err := decodeResultPayload(payload, &prev)
			if err != nil {
				return info, tallies, err
			}
			prev = rec
			if fn != nil {
				if err := fn(rec); err != nil {
					return info, tallies, err
				}
			}
		case frameEnd:
			if tallies, err = decodeEndPayload(payload); err != nil {
				return info, tallies, err
			}
			if len(rest) != 0 {
				return info, tallies, corrupt("%d bytes after the end frame", len(rest))
			}
			return info, tallies, nil
		default:
			return info, tallies, corrupt("unknown frame type %q", typ)
		}
	}
}

// DecodeBinary fully decodes a binary stream into its records. The
// returned records own their memory (safe to retain).
func DecodeBinary(stream []byte) (StreamInfo, []Record, StreamTallies, error) {
	var recs []Record
	info, tallies, err := ScanBinary(stream, func(rec Record) error {
		if rec.Value != nil {
			rec.Value = append([]byte(nil), rec.Value...)
		}
		recs = append(recs, rec)
		return nil
	})
	if err != nil {
		return info, nil, tallies, err
	}
	return info, recs, tallies, nil
}

// EncodeBinary is DecodeBinary's inverse: it renders a complete stream
// from its parts, byte-identical to what the Binary sink would emit.
func EncodeBinary(info StreamInfo, recs []Record, tallies StreamTallies) []byte {
	out := BinaryHeader(info.Name, info.SeedBase, info.Points, info.Trials)
	for _, rec := range recs {
		out = AppendBinaryRecord(out, rec)
	}
	return append(out, BinaryTrailer(tallies.Trials, tallies.OK, tallies.Failed)...)
}

// SplitBinaryStream validates a complete stream's framing — magic,
// version, header first, per-frame CRCs, end frame last — without
// decoding result payloads, and returns the header identity, the raw
// result-frame region (aliasing stream) and the trailer tallies. This
// is the fabric merger's primitive: shard payloads validate and merge
// by frame arithmetic alone, no per-record decode.
func SplitBinaryStream(stream []byte) (StreamInfo, []byte, StreamTallies, error) {
	var info StreamInfo
	var tallies StreamTallies
	rest, err := checkMagic(stream)
	if err != nil {
		return info, nil, tallies, err
	}
	typ, payload, n, err := readFrame(rest)
	if err != nil {
		return info, nil, tallies, err
	}
	if typ != frameHeader {
		return info, nil, tallies, corrupt("stream does not open with a header frame (type %q)", typ)
	}
	if info, err = decodeHeaderPayload(payload); err != nil {
		return info, nil, tallies, err
	}
	rest = rest[n:]
	body := rest
	bodyLen := 0
	for {
		if len(rest) == 0 {
			return info, nil, tallies, corrupt("stream has no end frame")
		}
		typ, payload, n, err = readFrame(rest)
		if err != nil {
			return info, nil, tallies, err
		}
		rest = rest[n:]
		switch typ {
		case frameResult:
			bodyLen += n
		case frameEnd:
			if tallies, err = decodeEndPayload(payload); err != nil {
				return info, nil, tallies, err
			}
			if len(rest) != 0 {
				return info, nil, tallies, corrupt("%d bytes after the end frame", len(rest))
			}
			return info, body[:bodyLen], tallies, nil
		default:
			return info, nil, tallies, corrupt("unknown frame type %q", typ)
		}
	}
}

// TranscodeBinaryToNDJSON renders a complete binary stream as the exact
// NDJSON byte stream the NDJSON sink would have written for the same
// campaign: header line, result lines, end line.
func TranscodeBinaryToNDJSON(w io.Writer, stream []byte) error {
	rest, err := checkMagic(stream)
	if err != nil {
		return err
	}
	typ, payload, _, err := readFrame(rest)
	if err != nil {
		return err
	}
	if typ != frameHeader {
		return corrupt("stream does not open with a header frame (type %q)", typ)
	}
	info, err := decodeHeaderPayload(payload)
	if err != nil {
		return err
	}
	if _, err := w.Write(NDJSONHeader(info.Name, info.SeedBase, info.Points, info.Trials)); err != nil {
		return err
	}
	var buf []byte
	_, tallies, err := ScanBinary(stream, func(rec Record) error {
		var lerr error
		buf, lerr = rec.AppendNDJSONLine(buf[:0])
		if lerr != nil {
			return lerr
		}
		_, werr := w.Write(buf)
		return werr
	})
	if err != nil {
		return err
	}
	_, err = w.Write(NDJSONTrailer(tallies.Trials, tallies.OK, tallies.Failed))
	return err
}

// unmarshalKind parses one NDJSON frame line and checks its kind tag.
func unmarshalKind(line []byte, kind string, v any) error {
	if err := json.Unmarshal(line, v); err != nil {
		return fmt.Errorf("campaign: parsing %q line: %w", kind, err)
	}
	var probe struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(line, &probe); err != nil || probe.Kind != kind {
		return fmt.Errorf("campaign: line kind %q, want %q", probe.Kind, kind)
	}
	return nil
}

// TranscodeNDJSONToBinary parses a complete NDJSON campaign stream and
// renders the exact binary stream the Binary sink would have written.
func TranscodeNDJSONToBinary(w io.Writer, stream []byte) error {
	var hdr ndjsonHeader
	var end ndjsonEnd
	lines := bytes.Split(stream, []byte("\n"))
	if len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	if len(lines) < 2 {
		return fmt.Errorf("campaign: NDJSON stream has no header/trailer frame")
	}
	if err := unmarshalKind(lines[0], "campaign", &hdr); err != nil {
		return err
	}
	if err := unmarshalKind(lines[len(lines)-1], "end", &end); err != nil {
		return err
	}
	if _, err := w.Write(BinaryHeader(hdr.Campaign, hdr.SeedBase, hdr.Points, hdr.Trials)); err != nil {
		return err
	}
	var buf []byte
	for _, line := range lines[1 : len(lines)-1] {
		rec, err := ParseNDJSONResult(line)
		if err != nil {
			return err
		}
		buf = AppendBinaryRecord(buf[:0], rec)
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	_, err := w.Write(BinaryTrailer(end.Trials, end.Ok, end.Failed))
	return err
}

// Transcoder stages.
const (
	stageMagic = iota
	stageHeader
	stageRecords
	stageDone
)

// BinaryNDJSONReader incrementally transcodes a binary trial stream to
// NDJSON as it is produced. It reads binary frames from src — which may
// deliver them in arbitrary chunks, mid-frame splits included — and
// serves the corresponding NDJSON lines as soon as each frame
// completes, so a live subscriber tailing a running campaign sees lines
// with no more latency than the frames themselves. A source that ends
// mid-stream (a canceled job) surfaces ErrBinaryCorrupt.
type BinaryNDJSONReader struct {
	src     io.Reader
	in      []byte
	out     []byte
	outOff  int
	stage   int
	prev    Record
	buf     []byte
	srcDone bool
	err     error
}

// NewBinaryNDJSONReader returns a reader transcoding src to NDJSON.
func NewBinaryNDJSONReader(src io.Reader) *BinaryNDJSONReader {
	return &BinaryNDJSONReader{src: src}
}

// Read implements io.Reader.
func (t *BinaryNDJSONReader) Read(p []byte) (int, error) {
	for {
		if t.outOff < len(t.out) {
			n := copy(p, t.out[t.outOff:])
			t.outOff += n
			if t.outOff == len(t.out) {
				t.out, t.outOff = t.out[:0], 0
			}
			return n, nil
		}
		if t.err != nil {
			return 0, t.err
		}
		if err := t.consume(); err != nil {
			t.err = err
			continue
		}
		if t.outOff < len(t.out) {
			continue
		}
		if t.stage == stageDone {
			t.err = io.EOF
			continue
		}
		if t.srcDone {
			t.err = corrupt("stream ends mid-frame")
			continue
		}
		var chunk [4096]byte
		n, err := t.src.Read(chunk[:])
		if n > 0 {
			t.in = append(t.in, chunk[:n]...)
		}
		switch {
		case err == io.EOF:
			t.srcDone = true
		case err != nil:
			t.err = err
		}
	}
}

// consume transcodes every complete frame buffered in t.in into t.out,
// leaving any partial tail for the next read.
func (t *BinaryNDJSONReader) consume() error {
	for {
		switch t.stage {
		case stageMagic:
			if len(t.in) < len(binaryMagic)+1 {
				return nil
			}
			rest, err := checkMagic(t.in)
			if err != nil {
				return err
			}
			t.in = rest
			t.stage = stageHeader
		case stageHeader, stageRecords:
			typ, payload, n, err := parseFrame(t.in)
			if errors.Is(err, errShortFrame) {
				return nil
			}
			if err != nil {
				return err
			}
			switch {
			case t.stage == stageHeader && typ == frameHeader:
				info, err := decodeHeaderPayload(payload)
				if err != nil {
					return err
				}
				t.out = append(t.out, NDJSONHeader(info.Name, info.SeedBase, info.Points, info.Trials)...)
				t.stage = stageRecords
			case t.stage == stageRecords && typ == frameResult:
				rec, err := decodeResultPayload(payload, &t.prev)
				if err != nil {
					return err
				}
				// Render before advancing t.in: rec.Value aliases the
				// payload. prev keeps only the label for interning.
				line, lerr := rec.AppendNDJSONLine(t.buf[:0])
				if lerr != nil {
					return lerr
				}
				t.buf = line
				t.out = append(t.out, line...)
				t.prev = Record{Point: rec.Point}
			case t.stage == stageRecords && typ == frameEnd:
				tl, err := decodeEndPayload(payload)
				if err != nil {
					return err
				}
				t.out = append(t.out, NDJSONTrailer(tl.Trials, tl.OK, tl.Failed)...)
				t.stage = stageDone
			default:
				return corrupt("frame type %q out of order", typ)
			}
			t.in = t.in[n:]
		case stageDone:
			if len(t.in) != 0 {
				return corrupt("%d bytes after the end frame", len(t.in))
			}
			return nil
		}
	}
}

// TranscodeResultFrames renders a raw result-frame region — the slice
// between header and end frames, as returned by SplitBinaryStream — as
// NDJSON result lines. The fabric coordinator merges shard payloads in
// this form and uses this to emit its default NDJSON output without
// ever materializing records.
func TranscodeResultFrames(w io.Writer, payload []byte) error {
	var prev Record
	var buf []byte
	rest := payload
	for len(rest) > 0 {
		typ, p, n, err := readFrame(rest)
		if err != nil {
			return err
		}
		if typ != frameResult {
			return corrupt("frame type %q inside a result region", typ)
		}
		rec, err := decodeResultPayload(p, &prev)
		if err != nil {
			return err
		}
		buf, err = rec.AppendNDJSONLine(buf[:0])
		if err != nil {
			return err
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
		prev = Record{Point: rec.Point}
		rest = rest[n:]
	}
	return nil
}
