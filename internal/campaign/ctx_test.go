package campaign

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestRunContextCancelMidCampaign cancels a campaign while trials are in
// flight and asserts three things: RunContext returns promptly (bounded
// shutdown), the returned error is the context's, and no worker
// goroutines are leaked.
func TestRunContextCancelMidCampaign(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	firstStarted := make(chan struct{})
	var signal sync.Once
	spec := &Spec{
		Name:     "cancel-mid",
		SeedBase: 1,
		Points: []Point{{
			Label:  "p",
			Trials: 200,
			Run: func(tr Trial) (any, error) {
				signal.Do(func() { close(firstStarted) })
				// A well-behaved trial: poll its context the way the
				// experiments layer does between simulation slices.
				select {
				case <-tr.Ctx.Done():
					return nil, tr.Ctx.Err()
				case <-time.After(5 * time.Millisecond):
					return tr.Index, nil
				}
			},
		}},
	}

	go func() {
		<-firstStarted
		cancel()
	}()

	start := time.Now()
	out, err := (&Runner{Workers: 4}).RunContext(ctx, spec)
	elapsed := time.Since(start)

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext error = %v, want context.Canceled", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("shutdown took %v, want bounded well under 2s", elapsed)
	}
	if len(out.Results) >= spec.TotalTrials() {
		t.Fatalf("campaign ran to completion (%d results) despite cancellation", len(out.Results))
	}
	// Results must still be the collated ordinal prefix.
	for i, r := range out.Results {
		if r.Ordinal != i {
			t.Fatalf("result %d has ordinal %d; want contiguous prefix", i, r.Ordinal)
		}
	}

	// All pool goroutines (workers, feeder, closer, timers) must wind down.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunContextDeadline runs a campaign whose deadline expires mid-way
// and asserts the error is DeadlineExceeded with a contiguous prefix of
// results.
func TestRunContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	spec := &Spec{
		Name: "deadline", SeedBase: 1,
		Points: []Point{{
			Label: "p", Trials: 1000,
			Run: func(tr Trial) (any, error) {
				select {
				case <-tr.Ctx.Done():
					return nil, tr.Ctx.Err()
				case <-time.After(time.Millisecond):
					return nil, nil
				}
			},
		}},
	}
	_, err := (&Runner{Workers: 2}).RunContext(ctx, spec)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunContext error = %v, want context.DeadlineExceeded", err)
	}
}

// TestRunContextCompleted asserts an uncancelled context changes nothing:
// Run and RunContext(Background) produce identical outcomes.
func TestRunContextCompleted(t *testing.T) {
	mk := func() *Spec {
		return &Spec{
			Name: "bg", SeedBase: 7,
			Points: []Point{{
				Label: "p", Trials: 50,
				Run: func(tr Trial) (any, error) { return tr.Seed, nil },
			}},
		}
	}
	a, err := (&Runner{Workers: 4}).Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&Runner{Workers: 4}).RunContext(context.Background(), mk())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Results) != len(b.Results) {
		t.Fatalf("result counts differ: %d vs %d", len(a.Results), len(b.Results))
	}
	for i := range a.Results {
		if a.Results[i].Value != b.Results[i].Value {
			t.Fatalf("result %d differs: %v vs %v", i, a.Results[i].Value, b.Results[i].Value)
		}
	}
}
