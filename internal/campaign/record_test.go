package campaign

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
)

func TestRecordNDJSONLineRoundTrip(t *testing.T) {
	recs := []Record{
		{Point: "p0", Trial: 0, Seed: 42, OK: true, Value: json.RawMessage(`{"success":true,"attempts":3}`)},
		{Point: "p1", Trial: 7, Seed: 1 << 63, OK: false, Err: "anchor missed"},
		{Point: "p1", Trial: 8, Seed: 9, OK: false, Err: "boom", Panicked: true},
		{Point: "sweep/ε=0.5", Trial: 2, Seed: 3, OK: false, Err: "deadline", TimedOut: true},
		{Point: "p2", Trial: 1, Seed: 5, OK: true}, // nil value
	}
	for _, rec := range recs {
		line, err := rec.AppendNDJSONLine(nil)
		if err != nil {
			t.Fatalf("%+v: %v", rec, err)
		}
		back, err := ParseNDJSONResult(bytes.TrimSuffix(line, []byte("\n")))
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		line2, err := back.AppendNDJSONLine(nil)
		if err != nil {
			t.Fatalf("re-render: %v", err)
		}
		if !bytes.Equal(line, line2) {
			t.Fatalf("line round trip not lossless:\n%q\n%q", line, line2)
		}
	}
}

func TestParseNDJSONResultRejects(t *testing.T) {
	for _, in := range []string{
		"",
		"{",
		`{"kind":"campaign"}`,
		`{"kind":"metrics"}`,
	} {
		if _, err := ParseNDJSONResult([]byte(in)); err == nil {
			t.Fatalf("%q parsed cleanly", in)
		}
	}
}

// TestSharedValueFallback pins the deduped fallback: both stream sinks
// render an unmarshalable trial value through the same fmt degradation,
// so a fix in one cannot silently miss the other.
func TestSharedValueFallback(t *testing.T) {
	spec := &Spec{Name: "fb", SeedBase: 7, Points: []Point{{
		Label: "p0", Trials: 1,
		Run: func(Trial) (any, error) { return func() {}, nil },
	}}}
	var nb, jb bytes.Buffer
	r := &Runner{Workers: 1, Sinks: []Sink{NewNDJSON(&nb), NewJSONL(&jb)}}
	if _, err := r.Run(spec); err != nil {
		t.Fatal(err)
	}
	type valued struct {
		Kind  string          `json:"kind"`
		Value json.RawMessage `json:"value"`
	}
	extract := func(stream []byte) json.RawMessage {
		for _, line := range bytes.Split(stream, []byte("\n")) {
			var v valued
			if json.Unmarshal(line, &v) == nil && v.Kind == "result" {
				return v.Value
			}
		}
		t.Fatalf("no result line in %q", stream)
		return nil
	}
	nv, jv := extract(nb.Bytes()), extract(jb.Bytes())
	if !bytes.Equal(nv, jv) {
		t.Fatalf("sinks disagree on fallback value: NDJSON %q, JSONL %q", nv, jv)
	}
	var s string
	if err := json.Unmarshal(nv, &s); err != nil {
		t.Fatalf("fallback value is not a degraded string: %q (%v)", nv, err)
	}
}

func TestNewRecordClassifiesFailures(t *testing.T) {
	rec := NewRecord(Result{Point: "p", Index: 1, Seed: 2, Err: errors.New("x"), Panicked: true})
	if rec.OK || rec.Err != "x" || !rec.Panicked {
		t.Fatalf("rec = %+v", rec)
	}
	rec = NewRecord(Result{Point: "p", Index: 1, Seed: 2, Value: 17})
	if !rec.OK || string(rec.Value) != "17" {
		t.Fatalf("rec = %+v", rec)
	}
}
