package campaign

import (
	"encoding/json"
	"io"

	"injectable/internal/obs"
)

// ObsJSONL aggregates per-trial metrics snapshots (Result.Obs, produced
// under Runner.CollectObs) into one merged snapshot per point and writes
// them as JSON lines when the campaign finishes: one "point-metrics" line
// per point in point order, then one "campaign-summary" trailer.
//
// Because trials merge in ordinal order and the output carries no
// wall-clock or scheduling fields, the byte stream is identical for every
// worker count — the property the determinism tests pin down.
type ObsJSONL struct {
	enc    *json.Encoder
	err    error
	order  []string
	points map[string]*pointObs
}

// pointObs is one point's running aggregate.
type pointObs struct {
	trials    int
	succeeded int
	failed    int
	snap      *obs.Snapshot
}

// NewObsJSONL returns a sink writing aggregated metrics lines to w.
func NewObsJSONL(w io.Writer) *ObsJSONL {
	return &ObsJSONL{enc: json.NewEncoder(w), points: make(map[string]*pointObs)}
}

// Err returns the first write/encode error, if any.
func (o *ObsJSONL) Err() error { return o.err }

func (o *ObsJSONL) emit(v any) {
	if o.err == nil {
		o.err = o.enc.Encode(v)
	}
}

// Start implements Sink.
func (o *ObsJSONL) Start(spec *Spec, totalTrials int) {
	o.order = o.order[:0]
	o.points = make(map[string]*pointObs, len(spec.Points))
	o.emit(struct {
		Kind     string `json:"kind"`
		Campaign string `json:"campaign"`
		SeedBase uint64 `json:"seed_base"`
		Points   int    `json:"points"`
		Trials   int    `json:"trials"`
	}{"campaign", spec.Name, spec.SeedBase, len(spec.Points), totalTrials})
}

// Result implements Sink: fold the trial's snapshot into its point.
func (o *ObsJSONL) Result(r Result) {
	po, ok := o.points[r.Point]
	if !ok {
		po = &pointObs{snap: &obs.Snapshot{}}
		o.order = append(o.order, r.Point)
		o.points[r.Point] = po
	}
	po.trials++
	if r.Err == nil {
		po.succeeded++
	} else {
		po.failed++
	}
	po.snap.Merge(r.Obs)
}

// Finish implements Sink: write the per-point aggregates and a summary.
// Only deterministic Metrics fields are emitted — wall time, busy time and
// worker count vary run to run and would break byte-identical output.
func (o *ObsJSONL) Finish(m Metrics) {
	for _, label := range o.order {
		po := o.points[label]
		o.emit(struct {
			Kind      string        `json:"kind"`
			Point     string        `json:"point"`
			Trials    int           `json:"trials"`
			Succeeded int           `json:"succeeded"`
			Failed    int           `json:"failed"`
			Metrics   *obs.Snapshot `json:"metrics"`
		}{"point-metrics", label, po.trials, po.succeeded, po.failed, po.snap})
	}
	o.emit(struct {
		Kind      string `json:"kind"`
		Trials    int    `json:"trials"`
		Succeeded int    `json:"succeeded"`
		Failed    int    `json:"failed"`
	}{"campaign-summary", m.Trials, m.Succeeded, m.Failed})
}
