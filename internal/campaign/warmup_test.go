package campaign

import (
	"errors"
	"sync/atomic"
	"testing"
)

// warmEnv is a toy warmed environment: trials read base and record which
// warmup instance they saw.
type warmEnv struct {
	point string
	base  int
}

func warmedSpec(warmCalls *atomic.Int64, warmErr error) *Spec {
	warmup := func(u Warmup) (any, error) {
		warmCalls.Add(1)
		if warmErr != nil {
			return nil, warmErr
		}
		return &warmEnv{point: u.Point, base: 100}, nil
	}
	point := func(label string) Point {
		return Point{
			Label:  label,
			Trials: 6,
			Warmup: warmup,
			Run: func(t Trial) (any, error) {
				if t.WarmErr != nil {
					return nil, t.WarmErr
				}
				env := t.Warm.(*warmEnv)
				if env.point != t.Point {
					return nil, errors.New("warm env from wrong point")
				}
				return env.base + t.Index, nil
			},
		}
	}
	return &Spec{Name: "warmed", SeedBase: 1, Points: []Point{point("a"), point("b")}}
}

func TestWarmupSharedAcrossPointTrials(t *testing.T) {
	var calls atomic.Int64
	r := &Runner{Workers: 1}
	out, err := r.Run(warmedSpec(&calls, nil))
	if err != nil {
		t.Fatal(err)
	}
	// One worker, two points: exactly two warmups for twelve trials.
	if got := calls.Load(); got != 2 {
		t.Fatalf("warmup calls=%d, want 2", got)
	}
	if out.Metrics.Warmups != 2 {
		t.Fatalf("metrics warmups=%d, want 2", out.Metrics.Warmups)
	}
	for _, res := range out.Results {
		if res.Err != nil {
			t.Fatalf("trial %s/%d failed: %v", res.Point, res.Index, res.Err)
		}
		if res.Value.(int) != 100+res.Index {
			t.Fatalf("trial %s/%d value=%v", res.Point, res.Index, res.Value)
		}
	}
}

func TestWarmupResultsIdenticalAcrossWorkerCounts(t *testing.T) {
	var base []Result
	for _, workers := range []int{1, 3, 8} {
		var calls atomic.Int64
		r := &Runner{Workers: workers}
		out, err := r.Run(warmedSpec(&calls, nil))
		if err != nil {
			t.Fatal(err)
		}
		// Bounded by workers × points even when every worker warms both.
		if got := calls.Load(); got > int64(workers*2) {
			t.Fatalf("workers=%d: warmup calls=%d exceeds bound %d", workers, got, workers*2)
		}
		var vals []Result
		for _, res := range out.Results {
			res.Elapsed, res.Worker = 0, 0 // strip the non-deterministic fields
			vals = append(vals, res)
		}
		if base == nil {
			base = vals
			continue
		}
		for i := range vals {
			if vals[i] != base[i] {
				t.Fatalf("workers=%d: result %d = %+v, want %+v", workers, i, vals[i], base[i])
			}
		}
	}
}

func TestWarmupErrorReachesEveryTrialUnwrapped(t *testing.T) {
	var calls atomic.Int64
	warmErr := errors.New("radio hardware on fire")
	r := &Runner{Workers: 2}
	out, err := r.Run(warmedSpec(&calls, warmErr))
	if err != nil {
		t.Fatal(err)
	}
	// The failure is cached, not retried per trial.
	if got := calls.Load(); got > 4 {
		t.Fatalf("warmup calls=%d, want ≤ 4 (2 workers × 2 points)", got)
	}
	for _, res := range out.Results {
		var te *TrialError
		if errors.As(res.Err, &te) {
			t.Fatalf("trial error wrapped: %v", res.Err)
		}
		if !errors.Is(res.Err, warmErr) {
			t.Fatalf("trial %s/%d err=%v, want the warmup error", res.Point, res.Index, res.Err)
		}
	}
}

func TestWarmupPanicBecomesPanicError(t *testing.T) {
	spec := &Spec{Name: "p", SeedBase: 1, Points: []Point{{
		Label:  "a",
		Trials: 2,
		Warmup: func(Warmup) (any, error) { panic("warm boom") },
		Run: func(t Trial) (any, error) {
			if t.WarmErr != nil {
				return nil, t.WarmErr
			}
			return nil, nil
		},
	}}}
	out, err := (&Runner{Workers: 1}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range out.Results {
		var pe *PanicError
		if !errors.As(res.Err, &pe) || pe.Value != "warm boom" {
			t.Fatalf("err=%v, want PanicError(warm boom)", res.Err)
		}
	}
}

func TestWarmupSeedsAreStableAndDistinctFromTrialSeeds(t *testing.T) {
	var seeds []uint64
	spec := &Spec{Name: "s", SeedBase: 7, Points: []Point{{
		Label:  "a",
		Trials: 3,
		Warmup: func(u Warmup) (any, error) {
			seeds = append(seeds, u.Seed)
			return struct{}{}, nil
		},
		Run: func(t Trial) (any, error) { return t.Seed, nil },
	}}}
	out, err := (&Runner{Workers: 1}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 1 {
		t.Fatalf("warmups=%d, want 1", len(seeds))
	}
	if seeds[0] != DeriveWarmSeed(7, "a") {
		t.Fatalf("warm seed %d, want %d", seeds[0], DeriveWarmSeed(7, "a"))
	}
	for _, res := range out.Results {
		if res.Value.(uint64) == seeds[0] {
			t.Fatalf("trial %d seed collides with warm seed", res.Index)
		}
	}
}
