package campaign

import (
	"encoding/json"
	"fmt"
)

// Record is the deterministic, format-independent view of one trial
// result: exactly the fields the NDJSON "result" line carries, nothing
// the wall clock touches. It is the pivot type of the result codecs —
// the NDJSON sink, the binary codec and the transcoders all go through
// Record, which is what makes binary ↔ NDJSON a lossless bijection
// rather than two encoders that can drift apart.
type Record struct {
	// Point is the owning point's label.
	Point string
	// Trial is the trial's index within its point.
	Trial int
	// Seed is the trial's derived seed.
	Seed uint64
	// OK reports whether the trial succeeded (Err == nil on the Result).
	OK bool
	// Err is the failure message ("" on success).
	Err string
	// Panicked and TimedOut classify the failure.
	Panicked bool
	TimedOut bool
	// Value is the trial value as compact JSON (nil when the trial
	// returned nil or failed).
	Value json.RawMessage
}

// NewRecord projects a runner Result onto its deterministic record.
func NewRecord(r Result) Record {
	rec := Record{
		Point:    r.Point,
		Trial:    r.Index,
		Seed:     r.Seed,
		OK:       r.Err == nil,
		Panicked: r.Panicked,
		TimedOut: r.TimedOut,
		Value:    marshalValue(r.Value),
	}
	if r.Err != nil {
		rec.Err = r.Err.Error()
	}
	return rec
}

// marshalValue renders a trial value as compact JSON. A value that does
// not marshal (a channel, a cycle) degrades to its fmt representation
// instead of poisoning the stream; this is the one shared fallback both
// the NDJSON and JSONL sinks use, so a change here cannot silently miss
// one of them.
func marshalValue(v any) json.RawMessage {
	if v == nil {
		return nil
	}
	raw, err := json.Marshal(v)
	if err != nil {
		raw, _ = json.Marshal(fmt.Sprintf("%v", v))
	}
	return raw
}

// resultLine is the NDJSON "result" line. The sink, the transcoders and
// the parser share this one struct: its field order and omitempty tags
// define the canonical line bytes.
type resultLine struct {
	Kind     string          `json:"kind"`
	Point    string          `json:"point"`
	Trial    int             `json:"trial"`
	Seed     uint64          `json:"seed"`
	OK       bool            `json:"ok"`
	Err      string          `json:"err,omitempty"`
	Panicked bool            `json:"panicked,omitempty"`
	TimedOut bool            `json:"timed_out,omitempty"`
	Value    json.RawMessage `json:"value,omitempty"`
}

// line renders the record as its NDJSON line struct.
func (rec Record) line() resultLine {
	return resultLine{
		Kind:     "result",
		Point:    rec.Point,
		Trial:    rec.Trial,
		Seed:     rec.Seed,
		OK:       rec.OK,
		Err:      rec.Err,
		Panicked: rec.Panicked,
		TimedOut: rec.TimedOut,
		Value:    rec.Value,
	}
}

// AppendNDJSONLine appends the record's NDJSON line (newline included)
// exactly as the NDJSON sink writes it.
func (rec Record) AppendNDJSONLine(dst []byte) ([]byte, error) {
	raw, err := json.Marshal(rec.line())
	if err != nil {
		return dst, fmt.Errorf("campaign: encoding result line: %w", err)
	}
	return append(append(dst, raw...), '\n'), nil
}

// ParseNDJSONResult parses one NDJSON "result" line (without requiring
// the trailing newline) back into a Record. For a line produced by the
// NDJSON sink the parse is lossless: re-rendering the record yields the
// identical bytes.
func ParseNDJSONResult(line []byte) (Record, error) {
	var l resultLine
	if err := json.Unmarshal(line, &l); err != nil {
		return Record{}, fmt.Errorf("campaign: parsing result line: %w", err)
	}
	if l.Kind != "result" {
		return Record{}, fmt.Errorf("campaign: line kind %q, want \"result\"", l.Kind)
	}
	return Record{
		Point:    l.Point,
		Trial:    l.Trial,
		Seed:     l.Seed,
		OK:       l.OK,
		Err:      l.Err,
		Panicked: l.Panicked,
		TimedOut: l.TimedOut,
		Value:    l.Value,
	}, nil
}
