// Package llcrypt implements the cryptography of the BLE Link Layer and
// Security Manager: AES-CCM frame encryption (Core Spec Vol 6 Part E), the
// encryption-session key derivation from LL_ENC_REQ/RSP material, and the
// legacy-pairing confirm/key functions c1 and s1 (Vol 3 Part H §2.2.3).
//
// The paper's countermeasure analysis (§IV, §VIII) hinges on this layer:
// with LL encryption active an injected plaintext frame fails its MIC and
// the impact of InjectaBLE collapses from full control to denial of
// service. The experiment harness reproduces exactly that.
package llcrypt

import (
	"crypto/aes"
	"crypto/subtle"
	"errors"
	"fmt"
)

// MICSize is the BLE CCM message integrity check length in bytes.
const MICSize = 4

// ccmLenSize is the CCM L parameter (bytes encoding the message length).
const ccmLenSize = 2

// NonceSize is the CCM nonce length: 15 − L = 13 bytes.
const NonceSize = 15 - ccmLenSize

// ErrMIC reports a failed integrity check on decryption — the observable
// outcome of injecting a plaintext frame into an encrypted connection.
var ErrMIC = errors.New("llcrypt: MIC verification failed")

// CCMEncrypt encrypts plaintext with AES-128 CCM (M=4, L=2) and returns
// ciphertext ∥ MIC. aad is the additional authenticated data (for BLE: the
// masked first header byte).
func CCMEncrypt(key [16]byte, nonce [NonceSize]byte, plaintext, aad []byte) ([]byte, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("llcrypt: %w", err)
	}
	tag := ccmAuth(block.Encrypt, nonce, plaintext, aad)
	out := make([]byte, len(plaintext)+MICSize)
	ccmCTR(block.Encrypt, nonce, plaintext, out[:len(plaintext)])
	// The tag is encrypted with counter block 0.
	var a0, s0 [16]byte
	counterBlock(&a0, nonce, 0)
	block.Encrypt(s0[:], a0[:])
	for i := 0; i < MICSize; i++ {
		out[len(plaintext)+i] = tag[i] ^ s0[i]
	}
	return out, nil
}

// CCMDecrypt verifies and decrypts ciphertext ∥ MIC produced by CCMEncrypt.
// It returns ErrMIC when the tag does not match.
func CCMDecrypt(key [16]byte, nonce [NonceSize]byte, ciphertext, aad []byte) ([]byte, error) {
	if len(ciphertext) < MICSize {
		return nil, fmt.Errorf("llcrypt: ciphertext shorter than MIC: %d", len(ciphertext))
	}
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("llcrypt: %w", err)
	}
	body := ciphertext[:len(ciphertext)-MICSize]
	gotTag := ciphertext[len(ciphertext)-MICSize:]
	plain := make([]byte, len(body))
	ccmCTR(block.Encrypt, nonce, body, plain)
	wantTag := ccmAuth(block.Encrypt, nonce, plain, aad)
	var a0, s0 [16]byte
	counterBlock(&a0, nonce, 0)
	block.Encrypt(s0[:], a0[:])
	enc := make([]byte, MICSize)
	for i := 0; i < MICSize; i++ {
		enc[i] = wantTag[i] ^ s0[i]
	}
	if subtle.ConstantTimeCompare(enc, gotTag) != 1 {
		return nil, ErrMIC
	}
	return plain, nil
}

// ccmAuth computes the raw (unencrypted) CBC-MAC tag per RFC 3610.
func ccmAuth(encrypt func(dst, src []byte), nonce [NonceSize]byte, plaintext, aad []byte) [MICSize]byte {
	var b0 [16]byte
	// Flags: Adata, M'=(M-2)/2 in bits 3..5, L'=L-1 in bits 0..2.
	flags := byte((MICSize - 2) / 2 << 3)
	flags |= ccmLenSize - 1
	if len(aad) > 0 {
		flags |= 1 << 6
	}
	b0[0] = flags
	copy(b0[1:1+NonceSize], nonce[:])
	b0[14] = byte(len(plaintext) >> 8)
	b0[15] = byte(len(plaintext))

	var x [16]byte
	encrypt(x[:], b0[:])
	xorInto := func(chunk []byte) {
		var blockBuf [16]byte
		copy(blockBuf[:], chunk)
		for i := range x {
			x[i] ^= blockBuf[i]
		}
		encrypt(x[:], x[:])
	}
	if len(aad) > 0 {
		// First AAD block is prefixed with its 2-byte length.
		hdr := make([]byte, 0, 2+len(aad))
		hdr = append(hdr, byte(len(aad)>>8), byte(len(aad)))
		hdr = append(hdr, aad...)
		for off := 0; off < len(hdr); off += 16 {
			end := off + 16
			if end > len(hdr) {
				end = len(hdr)
			}
			xorInto(hdr[off:end])
		}
	}
	for off := 0; off < len(plaintext); off += 16 {
		end := off + 16
		if end > len(plaintext) {
			end = len(plaintext)
		}
		xorInto(plaintext[off:end])
	}
	var tag [MICSize]byte
	copy(tag[:], x[:MICSize])
	return tag
}

// counterBlock fills dst with the CTR block A_i.
func counterBlock(dst *[16]byte, nonce [NonceSize]byte, i uint16) {
	dst[0] = ccmLenSize - 1
	copy(dst[1:1+NonceSize], nonce[:])
	dst[14] = byte(i >> 8)
	dst[15] = byte(i)
}

// ccmCTR applies CTR keystream blocks A_1.. to src into dst.
func ccmCTR(encrypt func(dst, src []byte), nonce [NonceSize]byte, src, dst []byte) {
	var a, s [16]byte
	for off := 0; off < len(src); off += 16 {
		counterBlock(&a, nonce, uint16(off/16)+1)
		encrypt(s[:], a[:])
		end := off + 16
		if end > len(src) {
			end = len(src)
		}
		for i := off; i < end; i++ {
			dst[i] = src[i] ^ s[i-off]
		}
	}
}
