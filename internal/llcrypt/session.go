package llcrypt

import (
	"crypto/aes"
	"fmt"
)

// Direction distinguishes master→slave from slave→master traffic in the
// CCM nonce.
type Direction int

// Traffic directions.
const (
	MasterToSlave Direction = iota + 1
	SlaveToMaster
)

// Session is an active LL encryption session: the AES-CCM state both ends
// maintain after the encryption-start procedure. Each direction has its own
// 39-bit packet counter.
type Session struct {
	sk [16]byte
	iv [8]byte
	// packet counters per direction, incremented per encrypted PDU
	txCounterM2S uint64
	txCounterS2M uint64
}

// SessionKeyDiversifier is the 16-byte SKD assembled from the SKDm of
// LL_ENC_REQ (least-significant half) and SKDs of LL_ENC_RSP
// (most-significant half), per Core Spec Vol 6 Part B §5.1.3.
func SessionKeyDiversifier(skdm, skds [8]byte) [16]byte {
	var skd [16]byte
	copy(skd[0:8], skdm[:])
	copy(skd[8:16], skds[:])
	return skd
}

// InitializationVector assembles the 8-byte IV from IVm and IVs.
func InitializationVector(ivm, ivs [4]byte) [8]byte {
	var iv [8]byte
	copy(iv[0:4], ivm[:])
	copy(iv[4:8], ivs[:])
	return iv
}

// NewSession derives the session key SK = e(LTK, SKD) and binds the IV.
func NewSession(ltk [16]byte, skd [16]byte, iv [8]byte) (*Session, error) {
	block, err := aes.NewCipher(ltk[:])
	if err != nil {
		return nil, fmt.Errorf("llcrypt: %w", err)
	}
	s := &Session{iv: iv}
	block.Encrypt(s.sk[:], skd[:])
	return s, nil
}

// nonce builds the 13-byte CCM nonce: 39-bit packet counter (little
// endian) with the direction bit in bit 7 of byte 4, then the 8-byte IV.
func (s *Session) nonce(counter uint64, dir Direction) [NonceSize]byte {
	var n [NonceSize]byte
	for i := 0; i < 5; i++ {
		n[i] = byte(counter >> (8 * i))
	}
	n[4] &= 0x7F
	if dir == MasterToSlave {
		n[4] |= 0x80
	}
	copy(n[5:], s.iv[:])
	return n
}

// maskHeader returns the AAD: the first data-PDU header byte with NESN, SN
// and MD masked to zero (they may be retransmitted with different values).
func maskHeader(header byte) []byte { return []byte{header &^ 0x1C} }

// EncryptPDU encrypts a data-PDU payload in direction dir, consuming one
// packet-counter value, and returns payload ∥ MIC.
func (s *Session) EncryptPDU(header byte, payload []byte, dir Direction) ([]byte, error) {
	counter := s.takeCounter(dir)
	return CCMEncrypt(s.sk, s.nonce(counter, dir), payload, maskHeader(header))
}

// DecryptPDU verifies and decrypts a received payload ∥ MIC, consuming one
// packet-counter value for the given direction. ErrMIC means tampering or
// a plaintext injection.
func (s *Session) DecryptPDU(header byte, body []byte, dir Direction) ([]byte, error) {
	counter := s.takeCounter(dir)
	return CCMDecrypt(s.sk, s.nonce(counter, dir), body, maskHeader(header))
}

// takeCounter returns and increments the per-direction packet counter.
func (s *Session) takeCounter(dir Direction) uint64 {
	var c uint64
	if dir == MasterToSlave {
		c = s.txCounterM2S
		s.txCounterM2S++
	} else {
		c = s.txCounterS2M
		s.txCounterS2M++
	}
	return c & (1<<39 - 1)
}

// SessionKey exposes SK for test vectors.
func (s *Session) SessionKey() [16]byte { return s.sk }

// Counters returns the per-direction packet counters (the number of PDUs
// processed so far in each direction). The counters only ever grow — the
// monotonicity invariant the simtest checker enforces across a run.
func (s *Session) Counters() (m2s, s2m uint64) {
	return s.txCounterM2S, s.txCounterS2M
}
