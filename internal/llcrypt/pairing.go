package llcrypt

import (
	"crypto/aes"

	"injectable/internal/ble"
)

// Values in this file follow the Security Manager convention of Vol 3
// Part H: 128-bit values are written most-significant byte first in
// [16]byte arrays, matching the spec's sample-data notation.

// E is the SMP security function e: AES-128 encryption of a 16-byte block.
func E(key, plaintext [16]byte) [16]byte {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		// aes.NewCipher only fails on bad key length; [16]byte cannot.
		panic(err)
	}
	var out [16]byte
	block.Encrypt(out[:], plaintext[:])
	return out
}

// XOR16 returns a ⊕ b.
func XOR16(a, b [16]byte) [16]byte {
	var out [16]byte
	for i := range out {
		out[i] = a[i] ^ b[i]
	}
	return out
}

// C1 is the legacy-pairing confirm value function (Vol 3 Part H §2.2.3):
//
//	c1(k, r, preq, pres, iat, rat, ia, ra) = e(k, e(k, r ⊕ p1) ⊕ p2)
//	p1 = pres ∥ preq ∥ rat ∥ iat
//	p2 = padding ∥ ia ∥ ra
//
// preq/pres are the 7-byte pairing request/response PDUs, iat/rat the
// address types (0 public, 1 random), ia/ra the initiating and responding
// device addresses.
func C1(k, r [16]byte, preq, pres [7]byte, iat, rat byte, ia, ra ble.Address) [16]byte {
	var p1 [16]byte
	copy(p1[0:7], pres[:])
	copy(p1[7:14], preq[:])
	p1[14] = rat & 1
	p1[15] = iat & 1

	var p2 [16]byte
	copy(p2[4:10], ia[:])
	copy(p2[10:16], ra[:])

	inner := E(k, XOR16(r, p1))
	return E(k, XOR16(inner, p2))
}

// S1 is the legacy-pairing key generation function:
//
//	s1(k, r1, r2) = e(k, r1' ∥ r2')
//
// where r1' and r2' are the least-significant 8 bytes of r1 and r2 (in the
// MSB-first convention: the last 8 array bytes), r1' becoming the
// most-significant half.
func S1(k, r1, r2 [16]byte) [16]byte {
	var r [16]byte
	copy(r[0:8], r1[8:16])
	copy(r[8:16], r2[8:16])
	return E(k, r)
}
