package llcrypt

import (
	"bytes"
	"encoding/hex"
	"errors"
	"testing"
	"testing/quick"

	"injectable/internal/ble"
)

func h16(t *testing.T, s string) [16]byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != 16 {
		t.Fatalf("bad hex fixture %q", s)
	}
	var out [16]byte
	copy(out[:], b)
	return out
}

func TestCCMRoundTrip(t *testing.T) {
	key := [16]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	var nonce [NonceSize]byte
	copy(nonce[:], "0123456789abc")
	plain := []byte("attack at dawn")
	aad := []byte{0x02}
	ct, err := CCMEncrypt(key, nonce, plain, aad)
	if err != nil {
		t.Fatal(err)
	}
	if len(ct) != len(plain)+MICSize {
		t.Fatalf("ciphertext length %d", len(ct))
	}
	if bytes.Contains(ct, plain) {
		t.Fatal("plaintext visible in ciphertext")
	}
	back, err := CCMDecrypt(key, nonce, ct, aad)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, plain) {
		t.Fatalf("round trip: %q", back)
	}
}

func TestCCMDetectsTampering(t *testing.T) {
	key := [16]byte{42}
	var nonce [NonceSize]byte
	plain := []byte{1, 2, 3, 4, 5}
	ct, err := CCMEncrypt(key, nonce, plain, []byte{0x0E})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ct {
		bad := append([]byte(nil), ct...)
		bad[i] ^= 0x10
		if _, err := CCMDecrypt(key, nonce, bad, []byte{0x0E}); !errors.Is(err, ErrMIC) {
			t.Fatalf("tampered byte %d accepted (err=%v)", i, err)
		}
	}
}

func TestCCMDetectsAADChange(t *testing.T) {
	key := [16]byte{7}
	var nonce [NonceSize]byte
	ct, err := CCMEncrypt(key, nonce, []byte{9, 9}, []byte{0x02})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CCMDecrypt(key, nonce, ct, []byte{0x03}); !errors.Is(err, ErrMIC) {
		t.Fatal("AAD change accepted")
	}
}

func TestCCMEmptyPayload(t *testing.T) {
	key := [16]byte{1}
	var nonce [NonceSize]byte
	ct, err := CCMEncrypt(key, nonce, nil, []byte{0x01})
	if err != nil {
		t.Fatal(err)
	}
	if len(ct) != MICSize {
		t.Fatalf("MIC-only ciphertext length %d", len(ct))
	}
	back, err := CCMDecrypt(key, nonce, ct, []byte{0x01})
	if err != nil || len(back) != 0 {
		t.Fatalf("empty round trip: %v %v", back, err)
	}
}

func TestCCMTooShort(t *testing.T) {
	key := [16]byte{}
	var nonce [NonceSize]byte
	if _, err := CCMDecrypt(key, nonce, []byte{1, 2}, nil); err == nil {
		t.Fatal("3-byte ciphertext accepted")
	}
}

func TestCCMRoundTripProperty(t *testing.T) {
	f := func(key [16]byte, nonce [13]byte, plain []byte, aadByte byte) bool {
		if len(plain) > 251 {
			plain = plain[:251]
		}
		ct, err := CCMEncrypt(key, nonce, plain, []byte{aadByte})
		if err != nil {
			return false
		}
		back, err := CCMDecrypt(key, nonce, ct, []byte{aadByte})
		return err == nil && bytes.Equal(back, plain)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSessionKeyDerivation(t *testing.T) {
	// SK = e(LTK, SKD): verify against an independent E computation.
	ltk := h16(t, "4C68384139F574D836BCF34E9DFB01BF")
	skdm := [8]byte{0xAC, 0xBD, 0xCE, 0xDF, 0xE0, 0xF1, 0x02, 0x13}
	skds := [8]byte{0x02, 0x13, 0x24, 0x35, 0x46, 0x57, 0x68, 0x79}
	skd := SessionKeyDiversifier(skdm, skds)
	if !bytes.Equal(skd[0:8], skdm[:]) || !bytes.Equal(skd[8:16], skds[:]) {
		t.Fatal("SKD assembly wrong")
	}
	s, err := NewSession(ltk, skd, [8]byte{})
	if err != nil {
		t.Fatal(err)
	}
	if s.SessionKey() != E(ltk, skd) {
		t.Fatal("SK != e(LTK, SKD)")
	}
}

func TestSessionRoundTrip(t *testing.T) {
	ltk := [16]byte{11, 22, 33}
	skd := [16]byte{44, 55}
	iv := [8]byte{66, 77}
	master, err := NewSession(ltk, skd, iv)
	if err != nil {
		t.Fatal(err)
	}
	slave, err := NewSession(ltk, skd, iv)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		plain := []byte{0x04, byte(i), 0xAA}
		ct, err := master.EncryptPDU(0x02, plain, MasterToSlave)
		if err != nil {
			t.Fatal(err)
		}
		back, err := slave.DecryptPDU(0x02, ct, MasterToSlave)
		if err != nil {
			t.Fatalf("PDU %d: %v", i, err)
		}
		if !bytes.Equal(back, plain) {
			t.Fatalf("PDU %d mangled", i)
		}
	}
}

func TestSessionDirectionsIndependent(t *testing.T) {
	ltk, skd, iv := [16]byte{1}, [16]byte{2}, [8]byte{3}
	a, _ := NewSession(ltk, skd, iv)
	b, _ := NewSession(ltk, skd, iv)
	// Interleave directions: each has its own counter.
	ct1, _ := a.EncryptPDU(0x02, []byte{1}, MasterToSlave)
	ct2, _ := a.EncryptPDU(0x01, []byte{2}, SlaveToMaster)
	if _, err := b.DecryptPDU(0x02, ct1, MasterToSlave); err != nil {
		t.Fatal(err)
	}
	if _, err := b.DecryptPDU(0x01, ct2, SlaveToMaster); err != nil {
		t.Fatal(err)
	}
}

func TestSessionCounterDesyncFails(t *testing.T) {
	ltk, skd, iv := [16]byte{1}, [16]byte{2}, [8]byte{3}
	a, _ := NewSession(ltk, skd, iv)
	b, _ := NewSession(ltk, skd, iv)
	ct1, _ := a.EncryptPDU(0x02, []byte{1}, MasterToSlave)
	ct2, _ := a.EncryptPDU(0x02, []byte{2}, MasterToSlave)
	// Receiver misses ct1: decrypting ct2 with counter 0 must fail.
	if _, err := b.DecryptPDU(0x02, ct2, MasterToSlave); !errors.Is(err, ErrMIC) {
		t.Fatal("counter desync not detected")
	}
	_ = ct1
}

func TestSessionNonceDirectionBit(t *testing.T) {
	s := &Session{}
	nM := s.nonce(5, MasterToSlave)
	nS := s.nonce(5, SlaveToMaster)
	if nM[4]&0x80 == 0 || nS[4]&0x80 != 0 {
		t.Fatal("direction bit misplaced")
	}
	if nM[0] != 5 {
		t.Fatal("counter not little-endian in nonce")
	}
}

func TestMaskHeader(t *testing.T) {
	// NESN (bit 2), SN (bit 3), MD (bit 4) masked; LLID kept.
	got := maskHeader(0xFF)[0]
	if got != 0xFF&^0x1C {
		t.Fatalf("maskHeader = %02x", got)
	}
}

func TestPlaintextInjectionIntoEncryptedSessionFails(t *testing.T) {
	// The paper §IV: an attacker without the LTK can still inject, but the
	// frame fails MIC — impact limited to denial of service.
	ltk, skd, iv := [16]byte{9}, [16]byte{8}, [8]byte{7}
	slave, _ := NewSession(ltk, skd, iv)
	forged := []byte{0x06, 0x00, 0x01, 0x13, 0xDE, 0xAD} // plaintext ATT-ish bytes
	if _, err := slave.DecryptPDU(0x02, forged, MasterToSlave); !errors.Is(err, ErrMIC) {
		t.Fatal("plaintext injection accepted by encrypted session")
	}
}

func TestC1SpecVector(t *testing.T) {
	// Core Spec Vol 3 Part H §2.2.3 sample data. The 7-byte PDU values are
	// written MSB-first as in the spec: preq = 0x07071000000101,
	// pres = 0x05000800000302.
	k := [16]byte{}
	r := h16(t, "5783D52156AD6F0E6388274EC6702EE0")
	preq := [7]byte{0x07, 0x07, 0x10, 0x00, 0x00, 0x01, 0x01}
	pres := [7]byte{0x05, 0x00, 0x08, 0x00, 0x00, 0x03, 0x02}
	ia := ble.Address{0xA1, 0xA2, 0xA3, 0xA4, 0xA5, 0xA6}
	ra := ble.Address{0xB1, 0xB2, 0xB3, 0xB4, 0xB5, 0xB6}
	got := C1(k, r, preq, pres, 0x01, 0x00, ia, ra)
	want := h16(t, "1E1E3FEF878988EAD2A74DC5BEF13B86")
	if got != want {
		t.Fatalf("c1 = %X, want %X", got, want)
	}
}

func TestS1SpecVector(t *testing.T) {
	k := [16]byte{}
	r1 := h16(t, "000F0E0D0C0B0A091122334455667788")
	r2 := h16(t, "010203040506070899AABBCCDDEEFF00")
	got := S1(k, r1, r2)
	want := h16(t, "9A1FE1F0E8B0F49B5B4216AE796DA062")
	if got != want {
		t.Fatalf("s1 = %X, want %X", got, want)
	}
}

func TestC1DependsOnAllInputs(t *testing.T) {
	k, r := [16]byte{1}, [16]byte{2}
	preq, pres := [7]byte{3}, [7]byte{4}
	ia, ra := ble.Address{5}, ble.Address{6}
	base := C1(k, r, preq, pres, 0, 0, ia, ra)
	if C1(k, r, preq, pres, 1, 0, ia, ra) == base {
		t.Error("iat ignored")
	}
	if C1(k, r, preq, pres, 0, 1, ia, ra) == base {
		t.Error("rat ignored")
	}
	ia2 := ia
	ia2[5] = 0xFF
	if C1(k, r, preq, pres, 0, 0, ia2, ra) == base {
		t.Error("ia ignored")
	}
	preq2 := preq
	preq2[6] = 0xFF
	if C1(k, r, preq2, pres, 0, 0, ia, ra) == base {
		t.Error("preq ignored")
	}
}

func TestXOR16(t *testing.T) {
	a := [16]byte{0xFF}
	b := [16]byte{0x0F, 0xFF}
	got := XOR16(a, b)
	if got[0] != 0xF0 || got[1] != 0xFF || got[2] != 0 {
		t.Fatalf("XOR16 = %X", got)
	}
}
