package scenario

import (
	"fmt"
	"strings"
)

// FieldError pins one validation failure to the spec field that caused
// it, in the bracketed path syntax clients can map back onto their JSON
// ("devices[2].type", "sweep[0].values[3]").
type FieldError struct {
	Path string `json:"path"`
	Msg  string `json:"msg"`
}

// Error implements error.
func (e FieldError) Error() string { return e.Path + ": " + e.Msg }

// ValidationError collects every field failure of one Validate pass. The
// serving layer serializes Fields into its structured error body.
type ValidationError struct {
	Fields []FieldError `json:"fields"`
}

// Error implements error: the first failure, with a count of the rest.
func (e *ValidationError) Error() string {
	switch len(e.Fields) {
	case 0:
		return "scenario: invalid spec"
	case 1:
		return "scenario: invalid spec: " + e.Fields[0].Error()
	default:
		return fmt.Sprintf("scenario: invalid spec: %s (and %d more)",
			e.Fields[0].Error(), len(e.Fields)-1)
	}
}

func (e *ValidationError) add(path, format string, args ...any) {
	e.Fields = append(e.Fields, FieldError{Path: path, Msg: fmt.Sprintf(format, args...)})
}

// Device types a spec may name.
var deviceTypes = map[string]bool{
	"phone": true, "lightbulb": true, "keyfob": true, "smartwatch": true,
}

// Attack goals a spec may name ("" = inject).
var goals = map[string]bool{
	"": true, "inject": true, "none": true, "hijack-slave": true,
	"hijack-master": true, "mitm": true, "update": true,
}

// Payload names a spec may use ("" = the victim type's default).
var payloads = map[string]bool{
	"": true, "terminate": true, "toggle": true, "power-off": true,
	"color": true, "feature": true,
}

// bulbPayloads only make sense against a lightbulb victim.
var bulbPayloads = map[string]bool{"toggle": true, "power-off": true, "color": true}

// Validate checks a decoded spec semantically and against the admission
// limits, before any world is built. trials is the job's per-point trial
// count (≤ 0 means the serving default of 25); it feeds the total
// sim-time budget check. A failure is always a *ValidationError carrying
// structured field paths.
func Validate(s Spec, trials int, lim Limits) error {
	if trials <= 0 {
		trials = 25
	}
	ve := &ValidationError{}
	validateScalars(&s, lim, ve, "")
	validateSweepDecl(&s, lim, ve)
	if len(ve.Fields) > 0 {
		return ve
	}
	variants, err := Expand(s)
	if err != nil {
		return err
	}
	if len(variants) > lim.MaxPoints {
		ve.add("sweep", "%d points exceed the limit %d", len(variants), lim.MaxPoints)
		return ve
	}
	var total float64
	for k := range variants {
		vv := &ValidationError{}
		validateScalars(&variants[k].Spec, lim, vv, fmt.Sprintf("sweep.points[%d].", k))
		if len(vv.Fields) > 0 {
			ve.Fields = append(ve.Fields, vv.Fields...)
			return ve
		}
		total += simSeconds(variants[k].Spec)
	}
	total *= float64(trials)
	if total > lim.MaxTotalSimSeconds {
		ve.add("run.sim_seconds",
			"job asks for %.0f simulated seconds (%d points × %d trials) but the admission limit is %.0f",
			total, len(variants), trials, lim.MaxTotalSimSeconds)
		return ve
	}
	return nil
}

// simSeconds is a spec's per-trial virtual-time budget with the default
// applied.
func simSeconds(s Spec) float64 {
	if s.Run != nil && s.Run.SimSeconds > 0 {
		return s.Run.SimSeconds
	}
	return 120
}

// validName allows letters, digits and "._-/" — safe in campaign headers,
// cache keys and file names.
func validName(s string) bool {
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '.' || r == '_' || r == '-' || r == '/':
		default:
			return false
		}
	}
	return len(s) <= 64
}

// validateScalars checks every non-sweep field of one spec (the base spec
// or one expanded variant, with prefix re-pathing errors onto the point).
func validateScalars(s *Spec, lim Limits, ve *ValidationError, prefix string) {
	p := func(path string) string { return prefix + path }
	if s.Version != Version {
		ve.add(p("version"), "unsupported version %d (this daemon speaks %d)", s.Version, Version)
	}
	if !validName(s.Name) {
		ve.add(p("name"), "name %q: want ≤ 64 characters from [a-zA-Z0-9._/-]", s.Name)
	}

	if len(s.Devices) > lim.MaxDevices {
		ve.add(p("devices"), "%d devices exceed the limit %d", len(s.Devices), lim.MaxDevices)
	}
	phones, peripherals := 0, 0
	names := map[string]int{}
	for i, d := range s.Devices {
		fp := fmt.Sprintf("devices[%d]", i)
		if !deviceTypes[d.Type] {
			ve.add(p(fp+".type"), "unknown device type %q (want phone, lightbulb, keyfob or smartwatch)", d.Type)
			continue
		}
		if d.Type == "phone" {
			phones++
			if phones > 1 {
				ve.add(p(fp+".type"), "a second phone: a scenario has exactly one central")
			}
		} else {
			peripherals++
		}
		if !validName(d.Name) {
			ve.add(p(fp+".name"), "name %q: want ≤ 64 characters from [a-zA-Z0-9._/-]", d.Name)
		}
		if d.Name != "" {
			if prev, dup := names[d.Name]; dup {
				ve.add(p(fp+".name"), "duplicate name %q (also devices[%d])", d.Name, prev)
			}
			names[d.Name] = i
		}
		if d.ClockPPM < 0 || d.ClockPPM > 10000 {
			ve.add(p(fp+".clock_ppm"), "clock accuracy %v ppm out of range [0,10000]", d.ClockPPM)
		}
		if d.ClockJitterUS < 0 || d.ClockJitterUS > 1e6 {
			ve.add(p(fp+".clock_jitter_us"), "jitter %v µs out of range [0,1e6]", d.ClockJitterUS)
		}
	}
	if len(s.Devices) > 0 {
		if phones == 0 {
			ve.add(p("devices"), "no central: add a device with type \"phone\"")
		}
		if peripherals == 0 {
			ve.add(p("devices"), "no peripheral: the first non-phone device is the attack victim")
		}
	}

	if len(s.Walls) > lim.MaxWalls {
		ve.add(p("walls"), "%d walls exceed the limit %d", len(s.Walls), lim.MaxWalls)
	}
	for i, w := range s.Walls {
		fp := fmt.Sprintf("walls[%d]", i)
		if w.A == w.B {
			ve.add(p(fp), "zero-length wall at (%v,%v)", w.A.X, w.A.Y)
		}
		if w.LossDB < 0 || w.LossDB > 100 {
			ve.add(p(fp+".loss_db"), "loss %v dB out of range [0,100]", w.LossDB)
		}
	}

	if c := s.Conn; c != nil {
		if c.Interval != 0 && (c.Interval < 6 || c.Interval > 3200) {
			ve.add(p("conn.interval"), "hop interval %d out of range [6,3200] (1.25 ms units)", c.Interval)
		}
		if c.Latency < 0 || c.Latency > 499 {
			ve.add(p("conn.latency"), "slave latency %d out of range [0,499]", c.Latency)
		}
		if c.Hop != 0 && (c.Hop < 5 || c.Hop > 16) {
			ve.add(p("conn.hop"), "hop increment %d out of range [5,16]", c.Hop)
		}
		if c.UnusedChannels < 0 || c.UnusedChannels > 34 {
			ve.add(p("conn.unused_channels"), "%d unused channels out of range [0,34] (at least 3 data channels must remain)", c.UnusedChannels)
		}
	}

	if t := s.Traffic; t != nil {
		if t.ActivityMS < 0 || t.ActivityMS > 60000 {
			ve.add(p("traffic.activity_ms"), "activity interval %d ms out of range [0,60000]", t.ActivityMS)
		}
	}

	if a := s.Attacker; a != nil {
		if !goals[a.Goal] {
			ve.add(p("attacker.goal"), "unknown goal %q (want inject, none, hijack-slave, hijack-master, mitm or update)", a.Goal)
		}
		if !payloads[a.Payload] {
			ve.add(p("attacker.payload"), "unknown payload %q (want terminate, toggle, power-off, color or feature)", a.Payload)
		} else {
			victim := victimType(*s)
			if bulbPayloads[a.Payload] && victim != "lightbulb" {
				ve.add(p("attacker.payload"), "payload %q needs a lightbulb victim, not a %s (use \"feature\" or \"terminate\")", a.Payload, victim)
			}
			if a.Goal == "none" && a.Payload != "" {
				ve.add(p("attacker.payload"), "the \"none\" goal takes no payload")
			}
		}
		if a.Update != nil && *a.Update != (Update{}) {
			switch a.Goal {
			case "hijack-master", "mitm", "update":
			default:
				ve.add(p("attacker.update"), "goal %q takes no connection update (only hijack-master, mitm and update do)", a.Goal)
			}
		}
		if a.DelayMS < 0 || a.DelayMS > 600000 {
			ve.add(p("attacker.delay_ms"), "launch delay %d ms out of range [0,600000]", a.DelayMS)
		}
		if a.MaxAttempts < 0 || a.MaxAttempts > 10000 {
			ve.add(p("attacker.max_attempts"), "attempt cap %d out of range [0,10000]", a.MaxAttempts)
		}
		if a.AssumedSlavePPM < 0 || a.AssumedSlavePPM > 10000 {
			ve.add(p("attacker.assumed_slave_ppm"), "assumed accuracy %v ppm out of range [0,10000]", a.AssumedSlavePPM)
		}
		if a.MaxLeadUS < 0 || a.MaxLeadUS > 1e6 {
			ve.add(p("attacker.max_lead_us"), "lead cap %v µs out of range [0,1e6]", a.MaxLeadUS)
		}
		if u := a.Update; u != nil {
			if u.WinSize < 0 || u.WinSize > 8 {
				ve.add(p("attacker.update.win_size"), "window size %d out of range [0,8]", u.WinSize)
			}
			if u.WinOffset < 0 || u.WinOffset > 3200 {
				ve.add(p("attacker.update.win_offset"), "window offset %d out of range [0,3200]", u.WinOffset)
			}
			if u.Interval != 0 && (u.Interval < 6 || u.Interval > 3200) {
				ve.add(p("attacker.update.interval"), "interval %d out of range [6,3200]", u.Interval)
			}
			if u.InstantLead < 0 || u.InstantLead > 1000 {
				ve.add(p("attacker.update.instant_lead"), "instant lead %d events out of range [0,1000]", u.InstantLead)
			}
		}
	}

	if d := s.Defense; d != nil {
		if d.WideningScale < 0 || d.WideningScale > 100 {
			ve.add(p("defense.widening_scale"), "widening scale %v out of range [0,100]", d.WideningScale)
		}
	}

	if r := s.Run; r != nil {
		if r.SimSeconds < 0 || r.SimSeconds > lim.MaxSimSeconds {
			ve.add(p("run.sim_seconds"), "per-trial budget %v s out of range [0,%v]", r.SimSeconds, lim.MaxSimSeconds)
		}
	}
}

// validateSweepDecl checks the sweep axes structurally: resolvable
// fields, exactly one of values/range, per-axis value counts and label
// arity. Value-level bounds surface during expansion.
func validateSweepDecl(s *Spec, lim Limits, ve *ValidationError) {
	if len(s.Sweep) > lim.MaxAxes {
		ve.add("sweep", "%d axes exceed the limit %d", len(s.Sweep), lim.MaxAxes)
	}
	seen := map[string]int{}
	for i, ax := range s.Sweep {
		fp := fmt.Sprintf("sweep[%d]", i)
		if _, err := resolveAxisField(ax.Field); err != nil {
			ve.add(fp+".field", "%v", err)
		} else if di, ok := deviceIndexOf(ax.Field); ok && di >= len(s.Devices) {
			ve.add(fp+".field", "device index %d out of range (fleet has %d devices)", di, len(s.Devices))
		}
		if prev, dup := seen[ax.Field]; dup {
			ve.add(fp+".field", "duplicate axis %q (also sweep[%d])", ax.Field, prev)
		}
		seen[ax.Field] = i
		hasValues, hasRange := len(ax.Values) > 0, ax.Range != nil
		switch {
		case hasValues && hasRange:
			ve.add(fp, "exactly one of values and range, not both")
		case !hasValues && !hasRange:
			ve.add(fp, "an axis needs values or a range")
		case hasRange:
			r := ax.Range
			if !(r.Step > 0) {
				ve.add(fp+".range.step", "step %v must be positive", r.Step)
			} else if r.To < r.From {
				ve.add(fp+".range", "to %v below from %v", r.To, r.From)
			} else if _, ok := rangeValues(*r); !ok {
				ve.add(fp+".range", "range expands past %d values", maxAxisValues)
			}
		case len(ax.Values) > maxAxisValues:
			ve.add(fp+".values", "%d values exceed the per-axis limit %d", len(ax.Values), maxAxisValues)
		}
		if len(ax.Labels) > 0 {
			n := len(ax.Values)
			if hasRange && !hasValues {
				if vals, ok := rangeValues(*ax.Range); ok {
					n = len(vals)
				}
			}
			if len(ax.Labels) != n {
				ve.add(fp+".labels", "%d labels for %d values", len(ax.Labels), n)
			}
			for j, l := range ax.Labels {
				if l == "" || strings.ContainsAny(l, ",\n") || len(l) > 64 {
					ve.add(fmt.Sprintf("%s.labels[%d]", fp, j), "label %q: want 1–64 characters, no commas or newlines", l)
				}
			}
		}
	}
}
