package scenario_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"injectable/internal/campaign"
	"injectable/internal/experiments"
	"injectable/internal/scenario"
)

// loadExample decodes one committed spec from examples/scenarios/.
func loadExample(t *testing.T, name string) scenario.Spec {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "..", "examples", "scenarios", name))
	if err != nil {
		t.Fatal(err)
	}
	s, err := scenario.DecodeSpec(raw)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return s
}

// runStreams executes a campaign serially and returns its NDJSON and
// binary streams.
func runStreams(t *testing.T, spec *campaign.Spec) ([]byte, []byte) {
	t.Helper()
	var nd, bin bytes.Buffer
	runner := campaign.Runner{Workers: 1, Sinks: []campaign.Sink{
		campaign.NewNDJSON(&nd), campaign.NewBinary(&bin),
	}}
	if _, err := runner.Run(spec); err != nil {
		t.Fatal(err)
	}
	return nd.Bytes(), bin.Bytes()
}

// TestExampleSpecsMatchCatalog is the DSL ground-truth anchor: the
// committed example specs transcribe two catalog studies, and their
// compiled campaigns must produce byte-identical NDJSON and binary
// streams — same worlds, same seeds, same labels, same header.
func TestExampleSpecsMatchCatalog(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full sweep simulations")
	}
	cases := []struct {
		file    string
		catalog string
	}{
		{"exp1.json", "exp1"},
		{"ablation-sca.json", "ablation-sca"},
	}
	opts := experiments.Options{TrialsPerPoint: 2, SeedBase: 1000}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			sp := loadExample(t, tc.file)
			dsl, err := scenario.Compile(sp, opts)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := experiments.SweepSpec(tc.catalog, opts)
			if err != nil {
				t.Fatal(err)
			}
			dslND, dslBin := runStreams(t, dsl)
			refND, refBin := runStreams(t, ref)
			if !bytes.Equal(dslND, refND) {
				t.Errorf("NDJSON differs from catalog %q:\n%s\n--- vs ---\n%s", tc.catalog, dslND, refND)
			}
			if !bytes.Equal(dslBin, refBin) {
				t.Errorf("binary stream differs from catalog %q", tc.catalog)
			}
		})
	}
}

// TestFleetUpdateSpecCompiles covers the showcase world no catalog entry
// can express: six devices, two walls, mixed CSA, an attacker pushing a
// rogue connection update, IDS on — 2×2 sweep points with mixed labels.
func TestFleetUpdateSpecCompiles(t *testing.T) {
	sp := loadExample(t, "fleet-update.json")
	camp, err := scenario.Compile(sp, experiments.Options{TrialsPerPoint: 1, SeedBase: 5})
	if err != nil {
		t.Fatal(err)
	}
	if camp.Name != "fleet-update" {
		t.Errorf("campaign name %q", camp.Name)
	}
	want := []string{"csa1,30", "csa1,60", "csa2,30", "csa2,60"}
	if len(camp.Points) != len(want) {
		t.Fatalf("%d points, want %d", len(camp.Points), len(want))
	}
	for i, p := range camp.Points {
		if p.Label != want[i] {
			t.Errorf("point %d label %q, want %q", i, p.Label, want[i])
		}
	}
	// Per-point seed bases follow the documented layout: base + i·stride
	// over the full expansion.
	for i, p := range camp.Points {
		if got := p.Seed(0); got != 5+uint64(i)*1000 {
			t.Errorf("point %d seed(0) = %d, want %d", i, got, 5+uint64(i)*1000)
		}
	}
}

// TestFleetUpdateRunsEndToEnd executes one trial of the showcase world —
// the acceptance criterion that a never-before-expressible fleet runs,
// not merely compiles.
func TestFleetUpdateRunsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full multi-device simulation")
	}
	sp := loadExample(t, "fleet-update.json")
	exp, err := scenario.Execute(sp, experiments.Options{TrialsPerPoint: 1, SeedBase: 5})
	if err != nil {
		t.Fatal(err)
	}
	if exp.ID != "fleet-update" || exp.XLabel != "conn.csa2,conn.interval" {
		t.Errorf("experiment %q xlabel %q", exp.ID, exp.XLabel)
	}
	if len(exp.Points) != 4 {
		t.Fatalf("%d points", len(exp.Points))
	}
	for _, p := range exp.Points {
		if n := p.Series.Stats.N() + p.Series.Failures; n != 1 {
			t.Errorf("point %s collated %d trials, want 1", p.Label, n)
		}
	}
}
