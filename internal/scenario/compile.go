package scenario

import (
	"errors"
	"fmt"

	"injectable/internal/campaign"
	"injectable/internal/experiments"
	"injectable/internal/injectable"
	"injectable/internal/phy"
	"injectable/internal/sim"
)

// Documented defaults the compiler and canonicalizer share.
const (
	defaultSeedStride = 1000
	defaultInterval   = 36
	defaultSimSeconds = 120
)

// Compile validates the spec against DefaultLimits and expands it into
// the campaign to run: one experiments.SweepPoint per cross-producted
// sweep point, fed through experiments.BuildSweep — the exact shape the
// in-repo catalog compiles to, so DSL campaigns inherit deterministic
// collation, the snapshot/fork warmup modes (opts.Warmup) and point-range
// slicing (opts.PointStart/PointCount) unchanged.
//
// Per-point seed bases are absolute — job seed base + layout offset +
// i·stride with i the point's index in the full sweep, assigned before
// the range slice — so a shard's trials are bit-identical to the same
// points inside an unsharded run.
func Compile(s Spec, opts experiments.Options) (*campaign.Spec, error) {
	opts = opts.WithDefaults()
	if err := Validate(s, opts.TrialsPerPoint, DefaultLimits); err != nil {
		return nil, err
	}
	name, pts, err := points(s, opts)
	if err != nil {
		return nil, err
	}
	return experiments.BuildSweep(opts, name, pts), nil
}

// Execute compiles the spec and runs it in-process, collating per-point
// series like the catalog's entry points do — the `cmd/experiments
// -spec` path. The result stream honors every Options sink, so its
// NDJSON is byte-identical to a daemon job of the same spec.
func Execute(s Spec, opts experiments.Options) (*experiments.Experiment, error) {
	opts = opts.WithDefaults()
	if err := Validate(s, opts.TrialsPerPoint, DefaultLimits); err != nil {
		return nil, err
	}
	name, pts, err := points(s, opts)
	if err != nil {
		return nil, err
	}
	res, err := experiments.RunSweepPoints(opts, name, pts)
	if err != nil {
		return nil, err
	}
	xlabel := "point"
	if len(s.Sweep) > 0 {
		xlabel = s.Sweep[0].Field
		for _, ax := range s.Sweep[1:] {
			xlabel += "," + ax.Field
		}
	}
	return &experiments.Experiment{
		ID:     name,
		Title:  "declarative scenario " + name,
		XLabel: xlabel,
		Points: res,
	}, nil
}

// points expands the spec into labelled, absolutely-seeded sweep points
// and applies the options' point range.
func points(s Spec, opts experiments.Options) (string, []experiments.SweepPoint, error) {
	variants, err := Expand(s)
	if err != nil {
		return "", nil, err
	}
	offset, stride := uint64(0), uint64(defaultSeedStride)
	if s.Seed != nil {
		offset = s.Seed.Offset
		if s.Seed.Stride != 0 {
			stride = s.Seed.Stride
		}
	}
	name := s.Name
	if name == "" {
		name = "scenario"
	}
	pts := make([]experiments.SweepPoint, len(variants))
	for i, v := range variants {
		cfg, err := trialConfig(v.Spec)
		if err != nil {
			return "", nil, err
		}
		pts[i] = experiments.SweepPoint{
			Label:    v.Label,
			SeedBase: opts.SeedBase + offset + uint64(i)*stride,
			Cfg:      cfg,
		}
	}
	sliced, err := experiments.SlicePoints(name, pts, opts.PointStart, opts.PointCount)
	if err != nil {
		return "", nil, err
	}
	return name, sliced, nil
}

// trialConfig lowers one expanded variant onto the experiments trial
// knobs. Zero spec fields land on zero TrialConfig fields, whose defaults
// are exactly the documented spec defaults — which is what makes a DSL
// transcription of a catalog entry run the catalog's worlds.
func trialConfig(s Spec) (experiments.TrialConfig, error) {
	var cfg experiments.TrialConfig
	var central *Device
	var periphs []Device
	for i := range s.Devices {
		if s.Devices[i].Type == "phone" {
			central = &s.Devices[i]
		} else {
			periphs = append(periphs, s.Devices[i])
		}
	}
	if len(s.Devices) > 0 {
		if central == nil || len(periphs) == 0 {
			return cfg, errors.New("scenario: compile of unvalidated spec (missing central or victim)")
		}
		victim := periphs[0]
		cfg.Target = victim.Type
		cfg.TargetName = victim.Name
		cfg.BulbPos = position(victim.Pos)
		cfg.TargetPPM = victim.ClockPPM
		cfg.TargetJitter = usDuration(victim.ClockJitterUS)
		cfg.CentralName = central.Name
		cfg.CentralPos = position(central.Pos)
		cfg.CentralPPM = central.ClockPPM
		cfg.CentralJitter = usDuration(central.ClockJitterUS)
		for _, ex := range periphs[1:] {
			cfg.Extras = append(cfg.Extras, experiments.ExtraPeripheral{
				Kind: ex.Type, Name: ex.Name, Pos: position(ex.Pos),
			})
		}
	}
	for _, w := range s.Walls {
		loss := phy.DBm(w.LossDB)
		if loss == 0 {
			loss = phy.DefaultWallLoss
		}
		cfg.Walls = append(cfg.Walls, phy.Wall{
			A: phy.Position(w.A), B: phy.Position(w.B), Loss: loss,
		})
	}
	if c := s.Conn; c != nil {
		cfg.Interval = uint16(c.Interval)
		cfg.Latency = uint16(c.Latency)
		cfg.Hop = uint8(c.Hop)
		cfg.CSA2 = c.CSA2
		cfg.UnusedChans = c.UnusedChannels
	}
	if t := s.Traffic; t != nil {
		cfg.ActivityMS = t.ActivityMS
	}
	if a := s.Attacker; a != nil {
		cfg.Goal = a.Goal
		p, err := payloadOf(a.Payload)
		if err != nil {
			return cfg, err
		}
		cfg.Payload = p
		cfg.AttackerPos = position(a.Pos)
		cfg.GoalDelay = sim.Duration(a.DelayMS) * sim.Millisecond
		cfg.MaxAttempts = a.MaxAttempts
		cfg.Injector.AssumedSlavePPM = a.AssumedSlavePPM
		cfg.Injector.MaxLead = usDuration(a.MaxLeadUS)
		cfg.Injector.InjectAtWindowCenter = a.WindowCenter
		cfg.Injector.DisableAdaptiveGuard = a.NoAdaptiveGuard
		if u := a.Update; u != nil {
			cfg.Update = injectable.UpdateParams{
				WinSize:     uint8(u.WinSize),
				WinOffset:   uint16(u.WinOffset),
				Interval:    uint16(u.Interval),
				InstantLead: uint16(u.InstantLead),
			}
		}
	}
	if cfg.Payload == 0 && cfg.Target != "" && cfg.Target != "lightbulb" {
		// Non-lightbulb victims default to their own feature trigger; the
		// zero Payload would otherwise mean power-off, a bulb command.
		cfg.Payload = experiments.PayloadFeature
	}
	if d := s.Defense; d != nil {
		cfg.IDS = d.IDS
		cfg.WideningScale = d.WideningScale
	}
	if r := s.Run; r != nil && r.SimSeconds > 0 {
		cfg.SimBudget = sim.Duration(r.SimSeconds * float64(sim.Second))
	}
	return cfg, nil
}

// payloadOf maps a spec payload name onto the experiments enum ("" stays
// zero: the trial layer's default, power-off).
func payloadOf(name string) (experiments.Payload, error) {
	switch name {
	case "":
		return 0, nil
	case "terminate":
		return experiments.PayloadTerminate, nil
	case "toggle":
		return experiments.PayloadToggle, nil
	case "power-off":
		return experiments.PayloadPowerOff, nil
	case "color":
		return experiments.PayloadColor, nil
	case "feature":
		return experiments.PayloadFeature, nil
	}
	return 0, fmt.Errorf("scenario: unknown payload %q", name)
}

func position(p *Pos) phy.Position {
	if p == nil {
		return phy.Position{}
	}
	return phy.Position{X: p.X, Y: p.Y}
}

func usDuration(us float64) sim.Duration {
	return sim.Duration(us * float64(sim.Microsecond))
}
