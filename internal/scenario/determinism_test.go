package scenario_test

import (
	"bytes"
	"testing"

	"injectable/internal/campaign"
	"injectable/internal/experiments"
	"injectable/internal/scenario"
)

// dslSweepSpec is a small two-axis DSL sweep used by the determinism
// tests: 4 points, short trials, no attacker.
const dslSweepSpec = `{
	"version": 1,
	"name": "det-sweep",
	"run": {"sim_seconds": 20},
	"sweep": [
		{"field": "conn.interval", "values": [30, 60]},
		{"field": "conn.latency", "values": [0, 2]}
	]
}`

func compileDSL(t *testing.T, opts experiments.Options) *campaign.Spec {
	t.Helper()
	sp, err := scenario.DecodeSpec([]byte(dslSweepSpec))
	if err != nil {
		t.Fatal(err)
	}
	camp, err := scenario.Compile(sp, opts)
	if err != nil {
		t.Fatal(err)
	}
	return camp
}

func runWorkers(t *testing.T, spec *campaign.Spec, workers int) ([]byte, []byte) {
	t.Helper()
	var nd, bin bytes.Buffer
	runner := campaign.Runner{Workers: workers, Sinks: []campaign.Sink{
		campaign.NewNDJSON(&nd), campaign.NewBinary(&bin),
	}}
	if _, err := runner.Run(spec); err != nil {
		t.Fatal(err)
	}
	return nd.Bytes(), bin.Bytes()
}

// TestDSLSweepParallelDeterminism: a compiled DSL sweep produces
// byte-identical NDJSON and binary streams at every worker count — the
// same guarantee the catalog sweeps carry.
func TestDSLSweepParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full sweep simulations")
	}
	opts := experiments.Options{TrialsPerPoint: 2, SeedBase: 400}
	refND, refBin := runWorkers(t, compileDSL(t, opts), 1)
	for _, workers := range []int{4, 8} {
		nd, bin := runWorkers(t, compileDSL(t, opts), workers)
		if !bytes.Equal(nd, refND) {
			t.Errorf("workers=%d: NDJSON differs from serial", workers)
		}
		if !bytes.Equal(bin, refBin) {
			t.Errorf("workers=%d: binary stream differs from serial", workers)
		}
	}
}

// TestDSLSweepWarmupForkDeterminism: the snapshot-fork warmup path
// ("shared") and its fresh-world differential reference ("shared-fresh")
// produce byte-identical streams for a DSL sweep — compiled scenarios
// inherit the fork machinery for free.
func TestDSLSweepWarmupForkDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full sweep simulations")
	}
	base := experiments.Options{TrialsPerPoint: 2, SeedBase: 400}
	forked := base
	forked.Warmup = experiments.WarmupShared
	fresh := base
	fresh.Warmup = experiments.WarmupSharedFresh

	forkND, forkBin := runWorkers(t, compileDSL(t, forked), 2)
	freshND, freshBin := runWorkers(t, compileDSL(t, fresh), 2)
	if !bytes.Equal(forkND, freshND) {
		t.Errorf("forked warmup NDJSON differs from fresh-world reference")
	}
	if !bytes.Equal(forkBin, freshBin) {
		t.Errorf("forked warmup binary stream differs from fresh-world reference")
	}
}
