package scenario

import (
	"encoding/json"

	"injectable/internal/phy"
)

// Canonical maps equal-meaning specs onto one representation, so their
// encodings — and the dedup keys the serving layer hashes from them —
// coincide. Canonicalization is semantics-preserving on valid specs and
// idempotent on every spec:
//
//   - ranges expand into their value lists (a range sweep and its
//     spelled-out list are the same sweep);
//   - labels equal to the default value rendering are elided;
//   - fields set to their documented defaults are elided (interval 36,
//     seed stride 1000, wall loss 7 dB, goal "inject", the victim type's
//     default payload, 120 s budgets);
//   - empty slices and all-zero sub-objects are elided.
//
// Invalid shapes (say, an axis with both values and a range) pass through
// untouched, so canonicalizing never turns a rejected spec into an
// accepted one.
func Canonical(s Spec) Spec {
	c := clone(s)
	for i := range c.Sweep {
		ax := &c.Sweep[i]
		if ax.Range != nil && len(ax.Values) == 0 {
			if vals, ok := rangeValues(*ax.Range); ok {
				ax.Values, ax.Range = vals, nil
			}
		}
		if len(ax.Labels) > 0 && len(ax.Labels) == len(ax.Values) {
			def := true
			for j, v := range ax.Values {
				if ax.Labels[j] != formatValue(v) {
					def = false
					break
				}
			}
			if def {
				ax.Labels = nil
			}
		}
		if len(ax.Values) == 0 {
			ax.Values = nil
		}
		if len(ax.Labels) == 0 {
			ax.Labels = nil
		}
	}
	for i := range c.Devices {
		if c.Devices[i].Pos != nil && *c.Devices[i].Pos == (Pos{}) {
			c.Devices[i].Pos = nil
		}
	}
	for i := range c.Walls {
		if c.Walls[i].LossDB == float64(phy.DefaultWallLoss) {
			c.Walls[i].LossDB = 0
		}
	}
	if c.Seed != nil {
		if c.Seed.Stride == defaultSeedStride {
			c.Seed.Stride = 0
		}
		if *c.Seed == (SeedLayout{}) {
			c.Seed = nil
		}
	}
	if c.Conn != nil {
		if c.Conn.Interval == defaultInterval {
			c.Conn.Interval = 0
		}
		if *c.Conn == (Conn{}) {
			c.Conn = nil
		}
	}
	if c.Traffic != nil && *c.Traffic == (Traffic{}) {
		c.Traffic = nil
	}
	if a := c.Attacker; a != nil {
		if a.Goal == "inject" {
			a.Goal = ""
		}
		if a.Payload == defaultPayload(victimType(c)) {
			a.Payload = ""
		}
		if a.Pos != nil && *a.Pos == (Pos{}) {
			a.Pos = nil
		}
		if a.Update != nil && *a.Update == (Update{}) {
			a.Update = nil
		}
		if *a == (Attacker{}) {
			c.Attacker = nil
		}
	}
	if c.Defense != nil && *c.Defense == (Defense{}) {
		c.Defense = nil
	}
	if c.Run != nil {
		if c.Run.SimSeconds == defaultSimSeconds {
			c.Run.SimSeconds = 0
		}
		if *c.Run == (Run{}) {
			c.Run = nil
		}
	}
	return c
}

// EncodeCanonical canonicalizes and marshals. The returned bytes are the
// one encoding of the spec's equivalence class — the exact bytes the
// serving layer embeds in its dedup-key preimage.
func EncodeCanonical(s Spec) ([]byte, error) {
	return json.Marshal(Canonical(s))
}

// CanonicalBytes is the wire-to-wire form: strict-decode raw spec bytes
// and re-encode them canonically.
func CanonicalBytes(data []byte) ([]byte, error) {
	s, err := DecodeSpec(data)
	if err != nil {
		return nil, err
	}
	return EncodeCanonical(s)
}
