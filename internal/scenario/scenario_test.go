package scenario

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func decode(t *testing.T, src string) Spec {
	t.Helper()
	s, err := DecodeSpec([]byte(src))
	if err != nil {
		t.Fatalf("DecodeSpec(%s): %v", src, err)
	}
	return s
}

func TestDecodeSpecStrict(t *testing.T) {
	if _, err := DecodeSpec([]byte(`{"version":1,"bogus":3}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := DecodeSpec([]byte(`{"version":1} {"version":1}`)); err == nil {
		t.Error("trailing data accepted")
	}
	big := `{"version":1,"name":"` + strings.Repeat("a", maxSpecBytes) + `"}`
	if _, err := DecodeSpec([]byte(big)); err == nil {
		t.Error("oversize spec accepted")
	}
	s := decode(t, `{"version":1,"name":"ok"}`)
	if s.Version != 1 || s.Name != "ok" {
		t.Errorf("decoded %+v", s)
	}
}

func TestExpandCrossProduct(t *testing.T) {
	s := decode(t, `{"version":1,"sweep":[
		{"field":"conn.interval","values":[25,50],"labels":["a","b"]},
		{"field":"conn.latency","values":[0,3]}]}`)
	vs, err := Expand(s)
	if err != nil {
		t.Fatal(err)
	}
	wantLabels := []string{"a,0", "a,3", "b,0", "b,3"}
	if len(vs) != len(wantLabels) {
		t.Fatalf("%d variants, want %d", len(vs), len(wantLabels))
	}
	for i, v := range vs {
		if v.Label != wantLabels[i] {
			t.Errorf("variant %d label %q, want %q", i, v.Label, wantLabels[i])
		}
	}
	// First axis slowest: variant 1 keeps interval 25, moves latency to 3.
	if vs[1].Spec.Conn.Interval != 25 || vs[1].Spec.Conn.Latency != 3 {
		t.Errorf("variant 1 conn = %+v", vs[1].Spec.Conn)
	}
	if vs[2].Spec.Conn.Interval != 50 || vs[2].Spec.Conn.Latency != 0 {
		t.Errorf("variant 2 conn = %+v", vs[2].Spec.Conn)
	}
	// The base spec is untouched by expansion.
	if s.Conn != nil {
		t.Error("expansion mutated the input spec")
	}
}

func TestExpandRangeAndSweeplessDefault(t *testing.T) {
	s := decode(t, `{"version":1,"sweep":[{"field":"attacker.delay_ms","range":{"from":0,"to":400,"step":200}}]}`)
	vs, err := Expand(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 3 || vs[0].Label != "0" || vs[2].Label != "400" {
		t.Fatalf("range variants %+v", vs)
	}
	if vs[2].Spec.Attacker.DelayMS != 400 {
		t.Errorf("variant 2 delay = %d", vs[2].Spec.Attacker.DelayMS)
	}

	plain, err := Expand(decode(t, `{"version":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != 1 || plain[0].Label != "all" {
		t.Fatalf("sweepless expansion %+v", plain)
	}
}

func TestCanonicalEquivalentSpellings(t *testing.T) {
	spellings := []string{
		`{"version":1,"name":"w"}`,
		`{"name":"w","version":1,"conn":{"interval":36}}`,
		`{"version":1,"name":"w","attacker":{"goal":"inject"},"run":{"sim_seconds":120}}`,
		`{"version":1,"name":"w","seed":{"stride":1000},"walls":[]}`,
	}
	var first []byte
	for i, src := range spellings {
		enc, err := CanonicalBytes([]byte(src))
		if err != nil {
			t.Fatalf("spelling %d: %v", i, err)
		}
		if first == nil {
			first = enc
			continue
		}
		if !bytes.Equal(enc, first) {
			t.Errorf("spelling %d canonical %s != %s", i, enc, first)
		}
	}

	// Range and explicit values of the same axis are one world.
	a, err := CanonicalBytes([]byte(`{"version":1,"sweep":[{"field":"conn.interval","values":[25,50,75]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := CanonicalBytes([]byte(`{"version":1,"sweep":[{"field":"conn.interval","range":{"from":25,"to":75,"step":25}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("range spelling canonicalizes to %s, values spelling to %s", b, a)
	}

	// Canonicalization is a fixpoint.
	again, err := CanonicalBytes(a)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, a) {
		t.Errorf("canonical not idempotent: %s -> %s", a, again)
	}
}

// TestValidateAdmissionLimits: over-limit specs are rejected by pure
// spec arithmetic — no world, no campaign, no simulation is built.
func TestValidateAdmissionLimits(t *testing.T) {
	cases := []struct {
		name string
		src  string
		lim  Limits
		path string
	}{
		{
			name: "device count",
			src: `{"version":1,"devices":[{"type":"phone"},{"type":"lightbulb"},
				{"type":"keyfob"},{"type":"keyfob"}]}`,
			lim:  Limits{MaxDevices: 3, MaxWalls: 8, MaxAxes: 4, MaxPoints: 256, MaxSimSeconds: 600, MaxTotalSimSeconds: 1e6},
			path: "devices",
		},
		{
			name: "point count",
			src: `{"version":1,"sweep":[{"field":"conn.interval","range":{"from":6,"to":300,"step":1}}]}`,
			lim:  DefaultLimits,
			path: "sweep",
		},
		{
			name: "axis count",
			src: `{"version":1,"sweep":[
				{"field":"conn.interval","values":[25]},
				{"field":"conn.latency","values":[0]},
				{"field":"conn.hop","values":[7]},
				{"field":"traffic.activity_ms","values":[100]},
				{"field":"attacker.delay_ms","values":[0]}]}`,
			lim:  DefaultLimits,
			path: "sweep",
		},
		{
			name: "total sim budget",
			src:  `{"version":1,"run":{"sim_seconds":600},"sweep":[{"field":"conn.latency","range":{"from":0,"to":199,"step":1}}]}`,
			lim:  DefaultLimits,
			path: "run.sim_seconds",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Validate(decode(t, tc.src), 25, tc.lim)
			var verr *ValidationError
			if !errors.As(err, &verr) {
				t.Fatalf("Validate = %v, want *ValidationError", err)
			}
			for _, f := range verr.Fields {
				if f.Path == tc.path {
					return
				}
			}
			t.Errorf("no failure at path %q in %v", tc.path, verr.Fields)
		})
	}

	// The same budget passes when the trial count shrinks: the limit is
	// on points × trials × seconds, not any one factor.
	budget := decode(t, `{"version":1,"run":{"sim_seconds":600},"sweep":[{"field":"conn.latency","range":{"from":0,"to":199,"step":1}}]}`)
	if err := Validate(budget, 1, DefaultLimits); err != nil {
		t.Errorf("200 points × 1 trial × 600 s rejected: %v", err)
	}
}

// TestValidateSweptVariantBounds: a sweep that drives a field out of its
// scalar range is caught on the expanded point, with a point-scoped path.
func TestValidateSweptVariantBounds(t *testing.T) {
	s := decode(t, `{"version":1,"sweep":[{"field":"conn.interval","values":[36,9999]}]}`)
	err := Validate(s, 2, DefaultLimits)
	var verr *ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("Validate = %v, want *ValidationError", err)
	}
	found := false
	for _, f := range verr.Fields {
		if f.Path == "sweep.points[1].conn.interval" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected failure at sweep.points[1].conn.interval, got %v", verr.Fields)
	}
}
