package scenario

import (
	"bytes"
	"testing"
)

// FuzzDecodeScenarioSpec drives arbitrary bytes through the full
// admission pipeline — decode, validate, canonicalize — and pins the
// properties serve-level dedup depends on:
//
//  1. nothing panics, on any input;
//  2. canonicalization is a fixpoint: encoding the canonical form and
//     canonicalizing again reproduces the same bytes;
//  3. canonically-equal specs produce equal dedup keys (the canonical
//     bytes ARE the key segment, so fixpoint equality is key equality).
func FuzzDecodeScenarioSpec(f *testing.F) {
	seeds := []string{
		`{"version":1}`,
		`{"version":1,"name":"w","conn":{"interval":36}}`,
		`{"version":1,"sweep":[{"field":"conn.interval","values":[25,50]}]}`,
		`{"version":1,"sweep":[{"field":"conn.latency","range":{"from":0,"to":4,"step":2}}]}`,
		`{"version":1,"devices":[{"type":"phone"},{"type":"lightbulb"}],"walls":[{"a":{"x":-1,"y":-2},"b":{"x":-1,"y":2}}]}`,
		`{"version":1,"attacker":{"goal":"update","update":{"win_size":2,"win_offset":10,"interval":45}}}`,
		`{"version":2}`,
		`{"version":1,"bogus":3}`,
		`not json`,
		`{"version":1,"run":{"sim_seconds":1e9}}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := DecodeSpec(data)
		if err != nil {
			return
		}
		// Validation must never panic, whatever the decoded shape.
		_ = Validate(sp, 25, DefaultLimits)

		enc, err := EncodeCanonical(Canonical(clone(sp)))
		if err != nil {
			return
		}
		// Range axes expand to explicit values during canonicalization, so
		// the canonical form can legitimately exceed the wire-size cap a
		// raw spec squeaked under; the fixpoint property only applies to
		// re-admissible encodings.
		if len(enc) > maxSpecBytes {
			return
		}
		again, err := CanonicalBytes(enc)
		if err != nil {
			t.Fatalf("canonical encoding rejected on re-admission: %v\n%s", err, enc)
		}
		if !bytes.Equal(again, enc) {
			t.Fatalf("canonicalization is not a fixpoint:\n%s\n-- re-canonicalized -->\n%s", enc, again)
		}
	})
}
