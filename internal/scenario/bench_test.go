package scenario_test

import (
	"os"
	"path/filepath"
	"testing"

	"injectable/internal/experiments"
	"injectable/internal/scenario"
)

// BenchmarkScenarioCompile measures the full admission pipeline on the
// richest committed example — decode, validate, canonicalize, compile to
// a 4-point campaign — the work the daemon performs per POST /v1/scenario
// before any caching. Allocation counts are deterministic and gated by
// BENCH_10.json.
func BenchmarkScenarioCompile(b *testing.B) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "examples", "scenarios", "fleet-update.json"))
	if err != nil {
		b.Fatal(err)
	}
	opts := experiments.Options{TrialsPerPoint: 25, SeedBase: 1000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp, err := scenario.DecodeSpec(raw)
		if err != nil {
			b.Fatal(err)
		}
		if err := scenario.Validate(sp, 25, scenario.DefaultLimits); err != nil {
			b.Fatal(err)
		}
		if _, err := scenario.CanonicalBytes(raw); err != nil {
			b.Fatal(err)
		}
		if _, err := scenario.Compile(sp, opts); err != nil {
			b.Fatal(err)
		}
	}
}
