package scenario

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// maxAxisValues caps one axis's expansion; with MaxAxes axes the
// theoretical product still overflows nothing, and the point-count limit
// rejects anything real long before.
const maxAxisValues = 4096

// hardMaxPoints is the expansion-time backstop, above any configurable
// Limits.MaxPoints: Expand refuses to materialize more variants than
// this, so a hostile spec cannot balloon memory before Validate's policy
// check runs.
const hardMaxPoints = 1 << 16

// Variant is one expanded sweep point: the base spec with every axis
// value applied and the sweep cleared.
type Variant struct {
	// Label names the campaign point: the axis labels joined with ",",
	// or "all" for a sweepless spec.
	Label string
	Spec  Spec
}

// Expand resolves the sweep axes and cross-products them into per-point
// variants, first axis slowest (row-major, like nested loops in
// declaration order). A sweepless spec expands to one variant. Errors are
// *ValidationError values with field paths.
func Expand(s Spec) ([]Variant, error) {
	if len(s.Sweep) == 0 {
		v := clone(s)
		v.Sweep = nil
		return []Variant{{Label: "all", Spec: v}}, nil
	}
	type axis struct {
		apply  func(*Spec, float64) error
		values []float64
		labels []string
	}
	axes := make([]axis, len(s.Sweep))
	total := 1
	for i, ax := range s.Sweep {
		apply, err := resolveAxisField(ax.Field)
		if err != nil {
			return nil, &ValidationError{Fields: []FieldError{{
				Path: fmt.Sprintf("sweep[%d].field", i), Msg: err.Error(),
			}}}
		}
		values := ax.Values
		if len(values) == 0 && ax.Range != nil {
			vals, ok := rangeValues(*ax.Range)
			if !ok {
				return nil, &ValidationError{Fields: []FieldError{{
					Path: fmt.Sprintf("sweep[%d].range", i), Msg: "unexpandable range",
				}}}
			}
			values = vals
		}
		if len(values) == 0 || len(values) > maxAxisValues {
			return nil, &ValidationError{Fields: []FieldError{{
				Path: fmt.Sprintf("sweep[%d]", i), Msg: "an axis needs 1–4096 values",
			}}}
		}
		labels := ax.Labels
		if len(labels) == 0 {
			labels = make([]string, len(values))
			for j, v := range values {
				labels[j] = formatValue(v)
			}
		}
		if len(labels) != len(values) {
			return nil, &ValidationError{Fields: []FieldError{{
				Path: fmt.Sprintf("sweep[%d].labels", i),
				Msg:  fmt.Sprintf("%d labels for %d values", len(labels), len(values)),
			}}}
		}
		axes[i] = axis{apply: apply, values: values, labels: labels}
		if total > hardMaxPoints/len(values) {
			return nil, &ValidationError{Fields: []FieldError{{
				Path: "sweep", Msg: fmt.Sprintf("cross product exceeds %d points", hardMaxPoints),
			}}}
		}
		total *= len(values)
	}

	out := make([]Variant, 0, total)
	idx := make([]int, len(axes))
	labels := make([]string, len(axes))
	for k := 0; k < total; k++ {
		v := clone(s)
		v.Sweep = nil
		for a := range axes {
			if err := axes[a].apply(&v, axes[a].values[idx[a]]); err != nil {
				return nil, &ValidationError{Fields: []FieldError{{
					Path: fmt.Sprintf("sweep[%d].values[%d]", a, idx[a]), Msg: err.Error(),
				}}}
			}
			labels[a] = axes[a].labels[idx[a]]
		}
		out = append(out, Variant{Label: strings.Join(labels, ","), Spec: v})
		for a := len(idx) - 1; a >= 0; a-- {
			idx[a]++
			if idx[a] < len(axes[a].values) {
				break
			}
			idx[a] = 0
		}
	}
	return out, nil
}

// formatValue is the default point-label rendering of an axis value —
// shortest decimal form, so integral values label exactly like the
// catalog's historical integer labels ("25", not "25.0").
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// rangeValues expands an inclusive arithmetic progression. ok is false
// for a malformed or oversized range.
func rangeValues(r Range) ([]float64, bool) {
	if !(r.Step > 0) || r.To < r.From ||
		math.IsInf(r.From, 0) || math.IsInf(r.To, 0) || math.IsInf(r.Step, 0) ||
		math.IsNaN(r.From) || math.IsNaN(r.To) || math.IsNaN(r.Step) {
		return nil, false
	}
	span := (r.To - r.From) / r.Step
	if span > maxAxisValues {
		return nil, false
	}
	n := int(math.Floor(span+1e-9)) + 1
	if n < 1 || n > maxAxisValues {
		return nil, false
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.From + float64(i)*r.Step
	}
	return vals, true
}

// intVal coerces an axis value that targets an integer field.
func intVal(field string, v float64) (int, error) {
	if v != math.Trunc(v) || math.Abs(v) > 1<<31 {
		return 0, fmt.Errorf("%s takes integers, not %v", field, v)
	}
	return int(v), nil
}

// boolVal coerces an axis value that targets a boolean field.
func boolVal(field string, v float64) (bool, error) {
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	}
	return false, fmt.Errorf("%s takes 0 or 1, not %v", field, v)
}

func ensureConn(s *Spec) *Conn {
	if s.Conn == nil {
		s.Conn = &Conn{}
	}
	return s.Conn
}

func ensureTraffic(s *Spec) *Traffic {
	if s.Traffic == nil {
		s.Traffic = &Traffic{}
	}
	return s.Traffic
}

func ensureAttacker(s *Spec) *Attacker {
	if s.Attacker == nil {
		s.Attacker = &Attacker{}
	}
	return s.Attacker
}

func ensureAttackerPos(s *Spec) *Pos {
	a := ensureAttacker(s)
	if a.Pos == nil {
		a.Pos = &Pos{}
	}
	return a.Pos
}

func ensureUpdate(s *Spec) *Update {
	a := ensureAttacker(s)
	if a.Update == nil {
		a.Update = &Update{}
	}
	return a.Update
}

func ensureDefense(s *Spec) *Defense {
	if s.Defense == nil {
		s.Defense = &Defense{}
	}
	return s.Defense
}

func ensureRun(s *Spec) *Run {
	if s.Run == nil {
		s.Run = &Run{}
	}
	return s.Run
}

// intAxis builds an apply function for an integer field.
func intAxis(field string, set func(*Spec, int)) func(*Spec, float64) error {
	return func(s *Spec, v float64) error {
		n, err := intVal(field, v)
		if err != nil {
			return err
		}
		set(s, n)
		return nil
	}
}

// boolAxis builds an apply function for a boolean field (0/1).
func boolAxis(field string, set func(*Spec, bool)) func(*Spec, float64) error {
	return func(s *Spec, v float64) error {
		b, err := boolVal(field, v)
		if err != nil {
			return err
		}
		set(s, b)
		return nil
	}
}

// floatAxis builds an apply function for a float field.
func floatAxis(set func(*Spec, float64)) func(*Spec, float64) error {
	return func(s *Spec, v float64) error {
		set(s, v)
		return nil
	}
}

// axisFields is the sweepable-field registry: every path an Axis.Field
// may name, minus the indexed devices[i] family handled by
// resolveAxisField. Applied values still pass the same semantic
// validation as hand-written fields — Validate re-checks every expanded
// variant.
var axisFields = map[string]func(*Spec, float64) error{
	"conn.interval":        intAxis("conn.interval", func(s *Spec, n int) { ensureConn(s).Interval = n }),
	"conn.latency":         intAxis("conn.latency", func(s *Spec, n int) { ensureConn(s).Latency = n }),
	"conn.hop":             intAxis("conn.hop", func(s *Spec, n int) { ensureConn(s).Hop = n }),
	"conn.csa2":            boolAxis("conn.csa2", func(s *Spec, b bool) { ensureConn(s).CSA2 = b }),
	"conn.unused_channels": intAxis("conn.unused_channels", func(s *Spec, n int) { ensureConn(s).UnusedChannels = n }),

	"traffic.activity_ms": intAxis("traffic.activity_ms", func(s *Spec, n int) { ensureTraffic(s).ActivityMS = n }),

	"attacker.delay_ms":            intAxis("attacker.delay_ms", func(s *Spec, n int) { ensureAttacker(s).DelayMS = n }),
	"attacker.max_attempts":        intAxis("attacker.max_attempts", func(s *Spec, n int) { ensureAttacker(s).MaxAttempts = n }),
	"attacker.assumed_slave_ppm":   floatAxis(func(s *Spec, v float64) { ensureAttacker(s).AssumedSlavePPM = v }),
	"attacker.max_lead_us":         floatAxis(func(s *Spec, v float64) { ensureAttacker(s).MaxLeadUS = v }),
	"attacker.pos.x":               floatAxis(func(s *Spec, v float64) { ensureAttackerPos(s).X = v }),
	"attacker.pos.y":               floatAxis(func(s *Spec, v float64) { ensureAttackerPos(s).Y = v }),
	"attacker.update.win_size":     intAxis("attacker.update.win_size", func(s *Spec, n int) { ensureUpdate(s).WinSize = n }),
	"attacker.update.win_offset":   intAxis("attacker.update.win_offset", func(s *Spec, n int) { ensureUpdate(s).WinOffset = n }),
	"attacker.update.interval":     intAxis("attacker.update.interval", func(s *Spec, n int) { ensureUpdate(s).Interval = n }),
	"attacker.update.instant_lead": intAxis("attacker.update.instant_lead", func(s *Spec, n int) { ensureUpdate(s).InstantLead = n }),

	"defense.ids":            boolAxis("defense.ids", func(s *Spec, b bool) { ensureDefense(s).IDS = b }),
	"defense.widening_scale": floatAxis(func(s *Spec, v float64) { ensureDefense(s).WideningScale = v }),

	"run.sim_seconds": floatAxis(func(s *Spec, v float64) { ensureRun(s).SimSeconds = v }),
}

// resolveAxisField maps an Axis.Field path onto its apply function.
// Indexed device fields ("devices[1].pos.x") are parsed here; the index
// is bounds-checked at apply time (and earlier, by validateSweepDecl).
func resolveAxisField(field string) (func(*Spec, float64) error, error) {
	if apply, ok := axisFields[field]; ok {
		return apply, nil
	}
	if di, ok := deviceIndexOf(field); ok {
		sub := field[strings.Index(field, "].")+2:]
		var set func(*Device, float64)
		switch sub {
		case "pos.x":
			set = func(d *Device, v float64) { ensureDevicePos(d).X = v }
		case "pos.y":
			set = func(d *Device, v float64) { ensureDevicePos(d).Y = v }
		case "clock_ppm":
			set = func(d *Device, v float64) { d.ClockPPM = v }
		case "clock_jitter_us":
			set = func(d *Device, v float64) { d.ClockJitterUS = v }
		default:
			return nil, fmt.Errorf("unknown device field %q (want pos.x, pos.y, clock_ppm or clock_jitter_us)", sub)
		}
		return func(s *Spec, v float64) error {
			if di >= len(s.Devices) {
				return fmt.Errorf("device index %d out of range (fleet has %d devices)", di, len(s.Devices))
			}
			set(&s.Devices[di], v)
			return nil
		}, nil
	}
	return nil, fmt.Errorf("unknown sweep field %q", field)
}

func ensureDevicePos(d *Device) *Pos {
	if d.Pos == nil {
		d.Pos = &Pos{}
	}
	return d.Pos
}

// deviceIndexOf parses "devices[N].…" paths; ok is false for any other
// shape.
func deviceIndexOf(field string) (int, bool) {
	rest, found := strings.CutPrefix(field, "devices[")
	if !found {
		return 0, false
	}
	close := strings.Index(rest, "].")
	if close <= 0 {
		return 0, false
	}
	n, err := strconv.Atoi(rest[:close])
	if err != nil || n < 0 || n > 1<<10 {
		return 0, false
	}
	return n, true
}
