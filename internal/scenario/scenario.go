// Package scenario is the declarative workload surface: a versioned JSON
// spec describing an arbitrary simulated world — device fleet, geometry,
// clocks, connection parameters, traffic, attacker goal and
// countermeasures — plus sweep axes that cross-product any numeric field
// into campaign points. A spec compiles onto the exact campaign shape the
// in-repo catalog uses (experiments.SweepPoint → experiments.BuildSweep),
// so DSL-defined jobs inherit everything the engine offers: deterministic
// byte-identical result streams at any worker count, snapshot/fork
// warmup, point-range sharding across the fabric, and the serving layer's
// dedup/cache semantics.
//
// The package has four faces:
//
//   - DecodeSpec: a strict decoder (unknown fields, trailing data and
//     oversized payloads are errors) that never panics — a pure function
//     fit for fuzzing.
//   - Validate: semantic validation with structured field paths
//     ("devices[2].type: unknown device type") and admission-time
//     resource limits, so an over-budget spec is rejected before any
//     world is built.
//   - Canonical/EncodeCanonical: a canonicalizer mapping equal-meaning
//     specs (field order, default elision, range-vs-list sweeps) onto one
//     byte encoding, which is what the serving layer hashes into its
//     dedup key.
//   - Compile: Spec → campaign.Spec via experiments.BuildSweep, with
//     absolute per-point seed bases so a sliced (sharded) compile is
//     bit-identical to the same points of the full campaign.
package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
)

// Version is the spec schema version this package decodes.
const Version = 1

// maxSpecBytes bounds the payload DecodeSpec will look at; it matches the
// serving layer's request cap, so nothing admissible over the wire is
// rejected here.
const maxSpecBytes = 1 << 16

// Spec is one declarative scenario, version 1. The zero value of every
// field is a documented default, and the canonical encoding elides
// defaults, so minimal specs stay minimal on the wire. Sub-objects are
// pointers: absent and zero-valued mean the same thing everywhere.
type Spec struct {
	// Version must be 1.
	Version int `json:"version"`
	// Name labels the compiled campaign (and its result stream header).
	// "" means "scenario". Allowed characters: letters, digits, ".",
	// "_", "-" and "/".
	Name string `json:"name,omitempty"`
	// Seed lays out per-point seed bases; nil means offset 0, stride 1000
	// (the catalog's historical layout).
	Seed *SeedLayout `json:"seed,omitempty"`
	// Devices is the fleet. Empty means the historical pair: a lightbulb
	// victim at the origin and a phone central at (2, 0). A non-empty
	// fleet must hold exactly one "phone" (the central) and at least one
	// peripheral; the first peripheral is the attack victim, the rest
	// advertise as bystanders.
	Devices []Device `json:"devices,omitempty"`
	// Walls adds path-loss obstacles to the world geometry.
	Walls []Wall `json:"walls,omitempty"`
	// Conn shapes the central's connection request; nil keeps the
	// historical parameters (hop interval 36, CSA#1, full channel map).
	Conn *Conn `json:"conn,omitempty"`
	// Traffic shapes the central's GATT activity; nil means none.
	Traffic *Traffic `json:"traffic,omitempty"`
	// Attacker tunes the attack; nil means the historical single-frame
	// injection with default tooling.
	Attacker *Attacker `json:"attacker,omitempty"`
	// Defense toggles countermeasures; nil means none.
	Defense *Defense `json:"defense,omitempty"`
	// Run bounds the simulation; nil means 120 simulated seconds per
	// trial.
	Run *Run `json:"run,omitempty"`
	// Sweep cross-products numeric field axes into campaign points; empty
	// means one point labelled "all". The first axis varies slowest.
	Sweep []Axis `json:"sweep,omitempty"`
}

// SeedLayout places the per-point seed bases: point i draws trials from
// base = job seed base + Offset + i·Stride, with i the point's absolute
// index in the full (unsliced) sweep — which is what makes sharded runs
// bit-identical to the whole.
type SeedLayout struct {
	// Offset decorrelates this scenario from others sharing a job seed
	// base (the catalog uses 0, 10000, 20000, … per study).
	Offset uint64 `json:"offset,omitempty"`
	// Stride separates consecutive points (0 = 1000, the catalog's
	// layout; trials use base, base+1, … so the stride bounds trials per
	// point).
	Stride uint64 `json:"stride,omitempty"`
}

// Pos is a 2D position in metres.
type Pos struct {
	X float64 `json:"x,omitempty"`
	Y float64 `json:"y,omitempty"`
}

// Device is one fleet member.
type Device struct {
	// Type is "phone" (the central), "lightbulb", "keyfob" or
	// "smartwatch".
	Type string `json:"type"`
	// Name is the trace name ("" keeps the historical names: "bulb" for
	// the victim, "central" for the phone, "extraN" for bystanders).
	Name string `json:"name,omitempty"`
	// Pos places the device (nil = the type's historical spot: victim at
	// the origin, phone at (2, 0), bystanders at the origin).
	Pos *Pos `json:"pos,omitempty"`
	// ClockPPM / ClockJitterUS override the sleep-clock model (0 = stack
	// default). Jitter is in microseconds.
	ClockPPM      float64 `json:"clock_ppm,omitempty"`
	ClockJitterUS float64 `json:"clock_jitter_us,omitempty"`
}

// Wall is a path-loss obstacle between two points.
type Wall struct {
	A Pos `json:"a"`
	B Pos `json:"b"`
	// LossDB is the penetration loss (0 = the stack's default interior
	// wall, 7 dB).
	LossDB float64 `json:"loss_db,omitempty"`
}

// Conn shapes the central's connection request.
type Conn struct {
	// Interval is the hop interval in 1.25 ms units (0 = 36, the
	// historical default; else 6..3200).
	Interval int `json:"interval,omitempty"`
	// Latency is the slave latency in events (0..499).
	Latency int `json:"latency,omitempty"`
	// Hop is the CSA#1 hop increment (0 = stack default; else 5..16).
	Hop int `json:"hop,omitempty"`
	// CSA2 selects Channel Selection Algorithm #2.
	CSA2 bool `json:"csa2,omitempty"`
	// UnusedChannels marks the lowest N data channels unused in the
	// initial channel map (0..34).
	UnusedChannels int `json:"unused_channels,omitempty"`
}

// Traffic shapes the central's application traffic.
type Traffic struct {
	// ActivityMS spaces periodic GATT writes in milliseconds (0 = none).
	ActivityMS int `json:"activity_ms,omitempty"`
}

// Attacker tunes the attack scenario.
type Attacker struct {
	// Goal is "" or "inject" (single-frame injection, the default),
	// "none" (baseline world, no attack), "hijack-slave",
	// "hijack-master", "mitm" or "update" (forged CONNECTION_UPDATE_IND
	// without takeover).
	Goal string `json:"goal,omitempty"`
	// Payload picks the injected frame for the inject goal: "terminate",
	// "toggle", "power-off", "color" (lightbulb victims only) or
	// "feature" (the victim type's own feature trigger). "" means
	// "power-off" for lightbulb victims and "feature" otherwise.
	Payload string `json:"payload,omitempty"`
	// Pos places the attacker (nil = the historical (1, 1.732) triangle
	// apex).
	Pos *Pos `json:"pos,omitempty"`
	// DelayMS postpones the attack launch this far past the warm phase.
	DelayMS int `json:"delay_ms,omitempty"`
	// MaxAttempts bounds the injection (0 = 200).
	MaxAttempts int `json:"max_attempts,omitempty"`
	// AssumedSlavePPM is the injector's assumed slave clock accuracy
	// (0 = 20).
	AssumedSlavePPM float64 `json:"assumed_slave_ppm,omitempty"`
	// MaxLeadUS caps how far before the predicted anchor the injector
	// fires, in microseconds (0 = the stack default).
	MaxLeadUS float64 `json:"max_lead_us,omitempty"`
	// WindowCenter fires at the widened window's center instead of its
	// start (an ablation knob).
	WindowCenter bool `json:"window_center,omitempty"`
	// NoAdaptiveGuard disables the adaptive inter-frame guard (an
	// ablation knob).
	NoAdaptiveGuard bool `json:"no_adaptive_guard,omitempty"`
	// Update tunes the forged connection update for the hijack-master,
	// mitm and update goals.
	Update *Update `json:"update,omitempty"`
}

// Update is the forged CONNECTION_UPDATE_IND parameter block. Zero fields
// keep the attack tooling's defaults (win size 2, offset interval/2,
// sniffed interval, instant 12 events ahead).
type Update struct {
	WinSize     int `json:"win_size,omitempty"`
	WinOffset   int `json:"win_offset,omitempty"`
	Interval    int `json:"interval,omitempty"`
	InstantLead int `json:"instant_lead,omitempty"`
}

// Defense toggles the countermeasures under study.
type Defense struct {
	// IDS attaches the monitor to the medium; results then carry its
	// alert count.
	IDS bool `json:"ids,omitempty"`
	// WideningScale scales the victim's window-widening countermeasure
	// (0 = the stack default of 1).
	WideningScale float64 `json:"widening_scale,omitempty"`
}

// Run bounds the simulation.
type Run struct {
	// SimSeconds is the per-trial virtual-time budget (0 = 120).
	SimSeconds float64 `json:"sim_seconds,omitempty"`
}

// Axis sweeps one numeric field over a list or range of values. Exactly
// one of Values and Range must be set.
type Axis struct {
	// Field is the swept field path, e.g. "conn.interval",
	// "attacker.assumed_slave_ppm" or "devices[1].pos.x". Boolean fields
	// ("conn.csa2", "defense.ids") sweep over 0/1.
	Field  string    `json:"field"`
	Values []float64 `json:"values,omitempty"`
	Range  *Range    `json:"range,omitempty"`
	// Labels names the points (len must equal the value count); empty
	// derives labels from the values ("25", "1.5", …).
	Labels []string `json:"labels,omitempty"`
}

// Range is an inclusive arithmetic progression: From, From+Step, … ≤ To.
type Range struct {
	From float64 `json:"from"`
	To   float64 `json:"to"`
	Step float64 `json:"step"`
}

// Limits are the admission-time resource bounds a spec is validated
// against — policy, enforced on the struct alone, before any world or
// campaign is built.
type Limits struct {
	// MaxDevices bounds the fleet size.
	MaxDevices int
	// MaxWalls bounds the wall count.
	MaxWalls int
	// MaxAxes bounds the sweep dimensionality.
	MaxAxes int
	// MaxPoints bounds the cross-producted point count.
	MaxPoints int
	// MaxSimSeconds bounds one trial's virtual-time budget.
	MaxSimSeconds float64
	// MaxTotalSimSeconds bounds the whole job: Σ per-point budget ×
	// trials per point.
	MaxTotalSimSeconds float64
}

// DefaultLimits is the serving layer's admission policy.
var DefaultLimits = Limits{
	MaxDevices:         16,
	MaxWalls:           8,
	MaxAxes:            4,
	MaxPoints:          256,
	MaxSimSeconds:      600,
	MaxTotalSimSeconds: 1_000_000,
}

// DecodeSpec parses a scenario spec strictly: unknown fields, trailing
// garbage and oversized payloads are errors. It performs no semantic
// validation (Validate does) and never panics, so it is a pure function
// fit for fuzzing.
func DecodeSpec(data []byte) (Spec, error) {
	var s Spec
	if len(data) > maxSpecBytes {
		return s, fmt.Errorf("scenario: spec exceeds %d bytes", maxSpecBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: decoding spec: %w", err)
	}
	if dec.More() {
		return Spec{}, errors.New("scenario: trailing data after spec")
	}
	return s, nil
}

// clone deep-copies a spec so sweep expansion can mutate variants freely.
// Empty slices come back nil, which the canonicalizer relies on.
func clone(s Spec) Spec {
	c := s
	c.Devices = append([]Device(nil), s.Devices...)
	for i := range c.Devices {
		if c.Devices[i].Pos != nil {
			p := *c.Devices[i].Pos
			c.Devices[i].Pos = &p
		}
	}
	c.Walls = append([]Wall(nil), s.Walls...)
	if s.Seed != nil {
		v := *s.Seed
		c.Seed = &v
	}
	if s.Conn != nil {
		v := *s.Conn
		c.Conn = &v
	}
	if s.Traffic != nil {
		v := *s.Traffic
		c.Traffic = &v
	}
	if s.Attacker != nil {
		v := *s.Attacker
		if v.Pos != nil {
			p := *v.Pos
			v.Pos = &p
		}
		if v.Update != nil {
			u := *v.Update
			v.Update = &u
		}
		c.Attacker = &v
	}
	if s.Defense != nil {
		v := *s.Defense
		c.Defense = &v
	}
	if s.Run != nil {
		v := *s.Run
		c.Run = &v
	}
	c.Sweep = append([]Axis(nil), s.Sweep...)
	for i := range c.Sweep {
		c.Sweep[i].Values = append([]float64(nil), s.Sweep[i].Values...)
		c.Sweep[i].Labels = append([]string(nil), s.Sweep[i].Labels...)
		if s.Sweep[i].Range != nil {
			r := *s.Sweep[i].Range
			c.Sweep[i].Range = &r
		}
	}
	return c
}

// victimType names the attack victim's device type: the first non-phone
// device, or "lightbulb" for the default fleet.
func victimType(s Spec) string {
	for _, d := range s.Devices {
		if d.Type != "phone" {
			return d.Type
		}
	}
	return "lightbulb"
}

// defaultPayload is the payload name "" resolves to for a victim type.
func defaultPayload(victim string) string {
	if victim == "lightbulb" || victim == "" {
		return "power-off"
	}
	return "feature"
}
