// Package pcap writes sniffed BLE Link Layer traffic as standard pcap
// files with LINKTYPE_BLUETOOTH_LE_LL (DLT 251), the format Wireshark and
// crackle consume: each record is AccessAddress ∥ PDU ∥ CRC, exactly what
// the paper's dongle forwards to its host.
package pcap

import (
	"encoding/binary"
	"fmt"
	"io"

	"injectable/internal/sim"
)

// linkTypeBluetoothLELL is DLT 251 (BLUETOOTH_LE_LL).
const linkTypeBluetoothLELL = 251

// magicMicroseconds is the classic little-endian pcap magic with
// microsecond timestamps.
const magicMicroseconds = 0xA1B2C3D4

// Writer streams pcap records to an io.Writer.
type Writer struct {
	w       io.Writer
	wrote   int
	packets int
}

// NewWriter writes the global header and returns the writer.
func NewWriter(w io.Writer) (*Writer, error) {
	hdr := struct {
		Magic                 uint32
		VersionMajor, Version uint16
		ThisZone              int32
		SigFigs               uint32
		SnapLen               uint32
		Network               uint32
	}{
		Magic:        magicMicroseconds,
		VersionMajor: 2, Version: 4,
		SnapLen: 65535,
		Network: linkTypeBluetoothLELL,
	}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return nil, fmt.Errorf("pcap: header: %w", err)
	}
	return &Writer{w: w, wrote: 24}, nil
}

// Packet is one captured LL packet.
type Packet struct {
	At            sim.Time
	AccessAddress uint32
	PDU           []byte
	CRC           uint32 // 24 bits
}

// WritePacket appends one record.
func (w *Writer) WritePacket(p Packet) error {
	body := make([]byte, 0, 4+len(p.PDU)+3)
	var aa [4]byte
	binary.LittleEndian.PutUint32(aa[:], p.AccessAddress)
	body = append(body, aa[:]...)
	body = append(body, p.PDU...)
	// CRC transmitted LSB first within each byte stream; store the 24-bit
	// register little-endian as captures from real sniffers do.
	body = append(body, byte(p.CRC), byte(p.CRC>>8), byte(p.CRC>>16))

	us := p.At.Microseconds()
	rec := struct {
		Sec, USec uint32
		CapLen    uint32
		OrigLen   uint32
	}{
		Sec:     uint32(us / 1e6),
		USec:    uint32(us % 1e6),
		CapLen:  uint32(len(body)),
		OrigLen: uint32(len(body)),
	}
	if err := binary.Write(w.w, binary.LittleEndian, rec); err != nil {
		return fmt.Errorf("pcap: record header: %w", err)
	}
	if _, err := w.w.Write(body); err != nil {
		return fmt.Errorf("pcap: record body: %w", err)
	}
	w.packets++
	w.wrote += 16 + len(body)
	return nil
}

// Packets returns the number of records written.
func (w *Writer) Packets() int { return w.packets }

// BytesWritten returns the total bytes emitted including headers.
func (w *Writer) BytesWritten() int { return w.wrote }
