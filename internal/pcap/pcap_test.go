package pcap

import (
	"bytes"
	"encoding/binary"
	"testing"

	"injectable/internal/sim"
)

func TestGlobalHeader(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if len(b) != 24 {
		t.Fatalf("header %d bytes", len(b))
	}
	if binary.LittleEndian.Uint32(b[0:4]) != magicMicroseconds {
		t.Fatal("magic wrong")
	}
	if binary.LittleEndian.Uint16(b[4:6]) != 2 || binary.LittleEndian.Uint16(b[6:8]) != 4 {
		t.Fatal("version wrong")
	}
	if binary.LittleEndian.Uint32(b[20:24]) != linkTypeBluetoothLELL {
		t.Fatal("link type not DLT 251")
	}
	if w.BytesWritten() != 24 || w.Packets() != 0 {
		t.Fatal("accounting wrong")
	}
}

func TestPacketRecord(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pkt := Packet{
		At:            sim.Time(1_234_567 * int64(sim.Microsecond)),
		AccessAddress: 0x8E89BED6,
		PDU:           []byte{0x01, 0x02, 0x03},
		CRC:           0xABCDEF,
	}
	if err := w.WritePacket(pkt); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()[24:]
	if len(b) != 16+4+3+3 {
		t.Fatalf("record %d bytes", len(b))
	}
	if sec := binary.LittleEndian.Uint32(b[0:4]); sec != 1 {
		t.Fatalf("sec = %d", sec)
	}
	if usec := binary.LittleEndian.Uint32(b[4:8]); usec != 234567 {
		t.Fatalf("usec = %d", usec)
	}
	if capLen := binary.LittleEndian.Uint32(b[8:12]); capLen != 10 {
		t.Fatalf("caplen = %d", capLen)
	}
	body := b[16:]
	if binary.LittleEndian.Uint32(body[0:4]) != 0x8E89BED6 {
		t.Fatal("AA wrong")
	}
	if !bytes.Equal(body[4:7], []byte{1, 2, 3}) {
		t.Fatal("PDU wrong")
	}
	if !bytes.Equal(body[7:10], []byte{0xEF, 0xCD, 0xAB}) {
		t.Fatal("CRC bytes wrong")
	}
	if w.Packets() != 1 {
		t.Fatal("packet count")
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, bytes.ErrTooLarge
	}
	f.n -= len(p)
	return len(p), nil
}

func TestWriteErrors(t *testing.T) {
	if _, err := NewWriter(&failWriter{n: 0}); err == nil {
		t.Fatal("header write error swallowed")
	}
	w, err := NewWriter(&failWriter{n: 24})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(Packet{}); err == nil {
		t.Fatal("record write error swallowed")
	}
}
