package benchfmt

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: injectable
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTableIFrameCodec   	20619765	        56.57 ns/op	      32 B/op	       2 allocs/op
BenchmarkFig9Exp1HopInterval/interval-25         	      25	  52706246 ns/op	         2.400 attempts/op	         0 failures	28185318 B/op	  491804 allocs/op
BenchmarkScenarioA/lightbulb                     	      25	  15997849 ns/op	         1.000 successRate	10025677 B/op	  173175 allocs/op
PASS
ok  	injectable	3.069s
`

func TestParse(t *testing.T) {
	s, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if s.Goos != "linux" || s.Goarch != "amd64" {
		t.Errorf("goos/goarch = %q/%q", s.Goos, s.Goarch)
	}
	if len(s.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(s.Benchmarks))
	}
	b := s.Benchmarks[1]
	if b.Name != "BenchmarkFig9Exp1HopInterval/interval-25" {
		t.Errorf("name = %q", b.Name)
	}
	if b.Iterations != 25 {
		t.Errorf("iterations = %d", b.Iterations)
	}
	for unit, want := range map[string]float64{
		"ns/op": 52706246, "attempts/op": 2.4, "failures": 0,
		"B/op": 28185318, "allocs/op": 491804,
	} {
		if got := b.Metrics[unit]; got != want {
			t.Errorf("metric %q = %v, want %v", unit, got, want)
		}
	}
}

func TestParseSkipsNoise(t *testing.T) {
	in := "random text\nBenchmarkBad notanumber 1 ns/op\nBenchmarkOK 10 5.0 ns/op\n"
	s, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Benchmarks) != 1 || s.Benchmarks[0].Name != "BenchmarkOK" {
		t.Fatalf("benchmarks = %+v", s.Benchmarks)
	}
}

func TestParseLastOccurrenceWins(t *testing.T) {
	in := "BenchmarkX 10 5.0 ns/op\nBenchmarkX 20 4.0 ns/op\n"
	s, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Benchmarks) != 1 || s.Benchmarks[0].Metrics["ns/op"] != 4.0 {
		t.Fatalf("benchmarks = %+v", s.Benchmarks)
	}
}

func suiteOf(bs ...Benchmark) *Suite { return &Suite{Benchmarks: bs} }

func bench(name string, ns, allocs float64) Benchmark {
	return Benchmark{Name: name, Iterations: 1,
		Metrics: map[string]float64{"ns/op": ns, "allocs/op": allocs}}
}

func TestCompareAllocRegressionFails(t *testing.T) {
	base := suiteOf(bench("BenchmarkA", 100, 5))
	cur := suiteOf(bench("BenchmarkA", 100, 6))
	rep := Compare(base, cur, GateConfig{NSThresholdPct: 30})
	if !rep.Failed {
		t.Fatalf("allocs/op 5→6 did not fail the gate:\n%s", strings.Join(rep.Lines, "\n"))
	}
}

func TestCompareAllocZeroStaysZero(t *testing.T) {
	base := suiteOf(bench("BenchmarkA", 100, 0))
	cur := suiteOf(bench("BenchmarkA", 120, 1))
	rep := Compare(base, cur, GateConfig{NSThresholdPct: 30})
	if !rep.Failed {
		t.Fatal("allocs/op 0→1 did not fail the gate")
	}
}

func TestCompareNSWithinThresholdPasses(t *testing.T) {
	base := suiteOf(bench("BenchmarkA", 100, 5))
	cur := suiteOf(bench("BenchmarkA", 120, 5))
	rep := Compare(base, cur, GateConfig{NSThresholdPct: 30, NSFatal: true})
	if rep.Failed {
		t.Fatalf("+20%% ns/op failed a 30%% gate:\n%s", strings.Join(rep.Lines, "\n"))
	}
}

func TestCompareNSBeyondThresholdWarnsByDefault(t *testing.T) {
	base := suiteOf(bench("BenchmarkA", 100, 5))
	cur := suiteOf(bench("BenchmarkA", 200, 5))
	rep := Compare(base, cur, GateConfig{NSThresholdPct: 30})
	if rep.Failed {
		t.Fatal("ns/op breach failed the gate without NSFatal")
	}
	joined := strings.Join(rep.Lines, "\n")
	if !strings.Contains(joined, "warn") {
		t.Fatalf("no warning for a 100%% ns/op increase:\n%s", joined)
	}
	rep = Compare(base, cur, GateConfig{NSThresholdPct: 30, NSFatal: true})
	if !rep.Failed {
		t.Fatal("ns/op breach passed the gate with NSFatal set")
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	base := suiteOf(bench("BenchmarkA", 100, 5))
	cur := suiteOf(bench("BenchmarkA", 40, 1))
	rep := Compare(base, cur, GateConfig{NSThresholdPct: 30, NSFatal: true})
	if rep.Failed {
		t.Fatalf("improvement failed the gate:\n%s", strings.Join(rep.Lines, "\n"))
	}
}

func TestCompareMissingBenchmarksSkipped(t *testing.T) {
	base := suiteOf(bench("BenchmarkOld", 100, 5))
	cur := suiteOf(bench("BenchmarkNew", 100, 5))
	rep := Compare(base, cur, GateConfig{NSThresholdPct: 30, NSFatal: true})
	if rep.Failed {
		t.Fatalf("disjoint benchmark sets failed the gate:\n%s", strings.Join(rep.Lines, "\n"))
	}
	joined := strings.Join(rep.Lines, "\n")
	if !strings.Contains(joined, "NEW") || !strings.Contains(joined, "GONE") {
		t.Fatalf("missing NEW/GONE markers:\n%s", joined)
	}
}

func TestCompareAllocThresholdTolerates(t *testing.T) {
	base := suiteOf(bench("BenchmarkA", 100, 100))
	cur := suiteOf(bench("BenchmarkA", 100, 108))
	rep := Compare(base, cur, GateConfig{NSThresholdPct: 30, AllocThresholdPct: 10})
	if rep.Failed {
		t.Fatalf("+8%% allocs/op failed a 10%% gate:\n%s", strings.Join(rep.Lines, "\n"))
	}
	cur = suiteOf(bench("BenchmarkA", 100, 115))
	rep = Compare(base, cur, GateConfig{NSThresholdPct: 30, AllocThresholdPct: 10})
	if !rep.Failed {
		t.Fatalf("+15%% allocs/op passed a 10%% gate:\n%s", strings.Join(rep.Lines, "\n"))
	}
}
