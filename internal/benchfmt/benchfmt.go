// Package benchfmt parses `go test -bench` output into structured records
// and compares two runs as a regression gate. It is the in-repo stand-in
// for benchstat: no external dependency, tuned to the two decisions CI
// actually makes (allocation counts may never rise; wall time may not rise
// past a coarse threshold).
package benchfmt

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the full benchmark name including sub-benchmark path and the
	// -N GOMAXPROCS suffix as printed, e.g. "BenchmarkDeliver-8".
	Name string `json:"name"`
	// Iterations is the b.N the line reports.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value, e.g. "ns/op": 19.7, "allocs/op": 0,
	// "B/op": 0, plus any custom units from b.ReportMetric such as
	// "attempts/op".
	Metrics map[string]float64 `json:"metrics"`
}

// Suite is a parsed benchmark run.
type Suite struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Parse reads `go test -bench` output. Non-benchmark lines (headers, PASS,
// ok, build noise) are skipped. Repeated lines for the same name (e.g.
// -count=N) keep the last occurrence.
func Parse(r io.Reader) (*Suite, error) {
	s := &Suite{}
	idx := map[string]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			s.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			s.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		b, ok := parseLine(line)
		if !ok {
			continue
		}
		if i, seen := idx[b.Name]; seen {
			s.Benchmarks[i] = b
		} else {
			idx[b.Name] = len(s.Benchmarks)
			s.Benchmarks = append(s.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// parseLine parses one result line:
//
//	BenchmarkName-8   1000   123.4 ns/op   5 B/op   2 allocs/op   1.5 attempts/op
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	if len(b.Metrics) == 0 {
		return Benchmark{}, false
	}
	return b, true
}

// GateConfig tunes Compare.
type GateConfig struct {
	// NSThresholdPct is the tolerated ns/op increase in percent.
	NSThresholdPct float64
	// NSFatal promotes ns/op breaches from warnings to failures.
	NSFatal bool
	// AllocThresholdPct is the tolerated allocs/op increase in percent.
	// The default 0 keeps the strict rule: any increase fails. A small
	// tolerance fits benchmarks whose allocation count is not perfectly
	// deterministic (HTTP paths, pooled buffers warming up).
	AllocThresholdPct float64
}

// Report is the outcome of a Compare.
type Report struct {
	Lines  []string
	Failed bool
}

// Compare gates cur against base. Allocation-count increases always fail;
// ns/op increases beyond the threshold fail only when cfg.NSFatal is set
// (timing on shared CI runners is too noisy for a strict gate). Benchmarks
// missing from either side are listed but never fail the gate.
func Compare(base, cur *Suite, cfg GateConfig) Report {
	var rep Report
	baseByName := map[string]Benchmark{}
	for _, b := range base.Benchmarks {
		baseByName[b.Name] = b
	}
	curNames := map[string]bool{}

	names := make([]string, 0, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		names = append(names, b.Name)
		curNames[b.Name] = true
	}
	sort.Strings(names)
	curByName := map[string]Benchmark{}
	for _, b := range cur.Benchmarks {
		curByName[b.Name] = b
	}

	for _, name := range names {
		c := curByName[name]
		b, ok := baseByName[name]
		if !ok {
			rep.Lines = append(rep.Lines, fmt.Sprintf("NEW   %s (no baseline, skipped)", name))
			continue
		}
		if line, failed, ok := gateMetric(name, "allocs/op", b, c, cfg.AllocThresholdPct, true); ok {
			rep.Lines = append(rep.Lines, line)
			rep.Failed = rep.Failed || failed
		}
		if line, failed, ok := gateMetric(name, "ns/op", b, c, cfg.NSThresholdPct, cfg.NSFatal); ok {
			rep.Lines = append(rep.Lines, line)
			rep.Failed = rep.Failed || failed
		}
	}
	gone := make([]string, 0)
	for name := range baseByName {
		if !curNames[name] {
			gone = append(gone, fmt.Sprintf("GONE  %s (in baseline, not in this run)", name))
		}
	}
	sort.Strings(gone)
	rep.Lines = append(rep.Lines, gone...)
	return rep
}

// gateMetric compares one metric of one benchmark, returning the rendered
// line and whether the regression rule tripped fatally.
func gateMetric(name, unit string, base, cur Benchmark, thresholdPct float64, fatal bool) (line string, failed, ok bool) {
	bv, bok := base.Metrics[unit]
	cv, cok := cur.Metrics[unit]
	if !bok || !cok {
		return "", false, false
	}
	delta := 0.0
	if bv != 0 {
		delta = (cv - bv) / bv * 100
	} else if cv > 0 {
		delta = 100
	}
	status := "ok   "
	if cv > bv && delta > thresholdPct {
		if fatal {
			status = "FAIL "
			failed = true
		} else {
			status = "warn "
		}
	}
	return fmt.Sprintf("%s %-50s %-10s %14.4g -> %-14.4g (%+.1f%%)",
		status, name, unit, bv, cv, delta), failed, true
}
