package l2cap

import (
	"testing"

	"injectable/internal/ble/pdu"
)

// The mux reassembles fragments from the radio; a hostile peer controls
// every header bit, so no fragment sequence may panic and every protocol
// violation must surface through OnError rather than corrupt state.

type fuzzTransport struct{ sent int }

func (ft *fuzzTransport) Send(llid pdu.LLID, payload []byte) { ft.sent++ }

// FuzzMuxHandlePDU decodes the input as a stream of (flags, length,
// payload) records so the fuzzer steers LLID bits and fragment boundaries
// independently of payload bytes.
func FuzzMuxHandlePDU(f *testing.F) {
	f.Add([]byte{})
	// Complete 3-byte message on CID 4.
	f.Add([]byte{0x02, 7, 3, 0, 4, 0, 'a', 'b', 'c'})
	// Start fragment promising more than it carries, then a continuation.
	f.Add([]byte{0x02, 6, 8, 0, 4, 0, 'a', 'b', 0x01, 2, 'c', 'd'})
	// Continuation with no start, then an oversized length field.
	f.Add([]byte{0x01, 2, 'x', 'y', 0x02, 4, 0xFF, 0xFF, 4, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		m := NewMux(&fuzzTransport{})
		var errs int
		m.OnError = func(error) { errs++ }
		delivered := 0
		m.Handle(4, func(payload []byte) { delivered++ })
		m.Handle(6, func(payload []byte) { delivered++ })
		for len(b) >= 2 {
			llid := pdu.LLID(b[0] & 0x03) // 0 decodes as reserved, 3 as control: both ignored by the mux
			n := int(b[1])
			b = b[2:]
			if n > len(b) {
				n = len(b)
			}
			m.HandlePDU(pdu.DataPDU{
				Header:  pdu.DataHeader{LLID: llid, Length: uint8(n)},
				Payload: b[:n],
			})
			b = b[n:]
		}
	})
}
