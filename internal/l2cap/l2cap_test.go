package l2cap

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"injectable/internal/ble/pdu"
)

// loopTransport queues sent PDUs so tests can replay them into a peer Mux.
type loopTransport struct {
	sent []pdu.DataPDU
}

func (l *loopTransport) Send(llid pdu.LLID, payload []byte) {
	l.sent = append(l.sent, pdu.DataPDU{
		Header:  pdu.DataHeader{LLID: llid},
		Payload: append([]byte(nil), payload...),
	})
}

func pipe() (*Mux, *Mux, *loopTransport, *loopTransport) {
	ta, tb := &loopTransport{}, &loopTransport{}
	return NewMux(ta), NewMux(tb), ta, tb
}

// pump replays everything a sent into b.
func pump(from *loopTransport, to *Mux) {
	for _, p := range from.sent {
		to.HandlePDU(p)
	}
	from.sent = nil
}

func TestSmallMessageSinglePDU(t *testing.T) {
	a, b, ta, _ := pipe()
	var got []byte
	b.Handle(CIDATT, func(p []byte) { got = append([]byte(nil), p...) })
	a.Send(CIDATT, []byte{0x0A, 0x03, 0x00}) // small ATT read request
	if len(ta.sent) != 1 {
		t.Fatalf("sent %d PDUs, want 1", len(ta.sent))
	}
	if ta.sent[0].Header.LLID != pdu.LLIDStart {
		t.Fatal("first fragment not a start")
	}
	pump(ta, b)
	if !bytes.Equal(got, []byte{0x0A, 0x03, 0x00}) {
		t.Fatalf("got % x", got)
	}
}

func TestLargeMessageFragmentsAndReassembles(t *testing.T) {
	a, b, ta, _ := pipe()
	var got []byte
	b.Handle(CIDSMP, func(p []byte) { got = append([]byte(nil), p...) })
	msg := make([]byte, 100)
	for i := range msg {
		msg[i] = byte(i)
	}
	a.Send(CIDSMP, msg)
	if len(ta.sent) < 3 {
		t.Fatalf("sent %d PDUs, expected several fragments", len(ta.sent))
	}
	for i, p := range ta.sent {
		if len(p.Payload) > 27 {
			t.Fatalf("fragment %d is %d bytes", i, len(p.Payload))
		}
		wantLLID := pdu.LLIDContinuation
		if i == 0 {
			wantLLID = pdu.LLIDStart
		}
		if p.Header.LLID != wantLLID {
			t.Fatalf("fragment %d LLID = %v", i, p.Header.LLID)
		}
	}
	pump(ta, b)
	if !bytes.Equal(got, msg) {
		t.Fatalf("reassembly mismatch: %d bytes", len(got))
	}
}

func TestEmptyMessage(t *testing.T) {
	a, b, ta, _ := pipe()
	called := false
	b.Handle(CIDATT, func(p []byte) { called = len(p) == 0 })
	a.Send(CIDATT, nil)
	pump(ta, b)
	if !called {
		t.Fatal("empty message not delivered")
	}
}

func TestChannelRouting(t *testing.T) {
	a, b, ta, _ := pipe()
	var att, smp int
	b.Handle(CIDATT, func([]byte) { att++ })
	b.Handle(CIDSMP, func([]byte) { smp++ })
	a.Send(CIDATT, []byte{1})
	a.Send(CIDSMP, []byte{2})
	a.Send(CIDATT, []byte{3})
	pump(ta, b)
	if att != 2 || smp != 1 {
		t.Fatalf("att=%d smp=%d", att, smp)
	}
}

func TestUnknownChannelDropped(t *testing.T) {
	a, b, ta, _ := pipe()
	a.Send(0x0040, []byte{1, 2, 3})
	pump(ta, b) // must not panic; message silently dropped
}

func TestEmptyPDUIgnoredDuringIdle(t *testing.T) {
	_, b, _, _ := pipe()
	errs := 0
	b.OnError = func(error) { errs++ }
	b.HandlePDU(pdu.Empty(false, false))
	if errs != 0 {
		t.Fatal("empty PDU reported as error")
	}
}

func TestContinuationWithoutStart(t *testing.T) {
	_, b, _, _ := pipe()
	var got error
	b.OnError = func(err error) { got = err }
	b.HandlePDU(pdu.DataPDU{
		Header:  pdu.DataHeader{LLID: pdu.LLIDContinuation},
		Payload: []byte{1, 2, 3},
	})
	if !errors.Is(got, ErrReassembly) {
		t.Fatalf("err = %v", got)
	}
}

func TestTruncatedStartFragment(t *testing.T) {
	_, b, _, _ := pipe()
	var got error
	b.OnError = func(err error) { got = err }
	b.HandlePDU(pdu.DataPDU{
		Header:  pdu.DataHeader{LLID: pdu.LLIDStart},
		Payload: []byte{5, 0}, // header cut short
	})
	if !errors.Is(got, ErrReassembly) {
		t.Fatalf("err = %v", got)
	}
}

func TestOverlongDeliveryRejected(t *testing.T) {
	_, b, _, _ := pipe()
	var got error
	b.OnError = func(err error) { got = err }
	// Header claims 1 byte but fragment carries 3.
	b.HandlePDU(pdu.DataPDU{
		Header:  pdu.DataHeader{LLID: pdu.LLIDStart},
		Payload: []byte{1, 0, 0x04, 0x00, 0xAA, 0xBB, 0xCC},
	})
	if !errors.Is(got, ErrReassembly) {
		t.Fatalf("err = %v", got)
	}
}

func TestInterruptedReassemblyRecovers(t *testing.T) {
	a, b, ta, _ := pipe()
	var got [][]byte
	errs := 0
	b.Handle(CIDATT, func(p []byte) { got = append(got, append([]byte(nil), p...)) })
	b.OnError = func(error) { errs++ }

	big := make([]byte, 60)
	a.Send(CIDATT, big)
	// Drop the last fragment, then send a fresh message.
	frags := ta.sent
	ta.sent = nil
	for _, p := range frags[:len(frags)-1] {
		b.HandlePDU(p)
	}
	a.Send(CIDATT, []byte{0x42})
	pump(ta, b)
	if errs == 0 {
		t.Fatal("interrupted reassembly not reported")
	}
	if len(got) != 1 || got[0][0] != 0x42 {
		t.Fatalf("recovery failed: %v", got)
	}
}

// Property: any payload ≤ 512 bytes round-trips through fragmentation.
func TestRoundTripProperty(t *testing.T) {
	f := func(payload []byte, cidRaw uint16) bool {
		if len(payload) > 512 {
			payload = payload[:512]
		}
		cid := CIDATT
		a, b, ta, _ := pipe()
		var got []byte
		ok := false
		b.Handle(cid, func(p []byte) { got = append([]byte(nil), p...); ok = true })
		a.Send(cid, payload)
		pump(ta, b)
		return ok && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
