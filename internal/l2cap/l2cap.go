// Package l2cap implements the fixed-channel subset of L2CAP used by BLE:
// framing with the 4-byte basic header, fragmentation of upper-layer
// messages into Link Layer data PDUs (LLID start/continuation) and
// reassembly on receive. ATT rides on CID 0x0004 and the Security Manager
// on CID 0x0006.
package l2cap

import (
	"errors"
	"fmt"

	"injectable/internal/ble"
	"injectable/internal/ble/pdu"
)

// Fixed channel identifiers.
const (
	// CIDATT is the Attribute Protocol channel.
	CIDATT uint16 = 0x0004
	// CIDSignaling is the LE signalling channel.
	CIDSignaling uint16 = 0x0005
	// CIDSMP is the Security Manager channel.
	CIDSMP uint16 = 0x0006
)

// HeaderSize is the basic L2CAP header length.
const HeaderSize = 4

// ErrReassembly reports inconsistent fragment sequences.
var ErrReassembly = errors.New("l2cap: reassembly error")

// Transport is the Link Layer service L2CAP needs: queue one data PDU.
type Transport interface {
	Send(llid pdu.LLID, payload []byte)
}

// Handler consumes a reassembled upper-layer message.
type Handler func(payload []byte)

// Mux multiplexes fixed L2CAP channels over one connection.
type Mux struct {
	transport Transport
	// fragment budget per LL PDU
	llPayload int

	handlers map[uint16]Handler

	// reassembly state
	rxCID     uint16
	rxWant    int
	rxBuf     []byte
	rxPartial bool

	// OnError observes protocol violations (useful in fuzzing/IDS).
	OnError func(err error)
}

// NewMux builds a multiplexer over the transport.
func NewMux(transport Transport) *Mux {
	return &Mux{
		transport: transport,
		llPayload: ble.MaxDataPDULen,
		handlers:  make(map[uint16]Handler),
	}
}

// Handle registers the handler for a channel.
func (m *Mux) Handle(cid uint16, h Handler) { m.handlers[cid] = h }

// Send transmits an upper-layer message on a channel, fragmenting as
// needed.
func (m *Mux) Send(cid uint16, payload []byte) {
	msg := make([]byte, 0, HeaderSize+len(payload))
	msg = append(msg, byte(len(payload)), byte(len(payload)>>8), byte(cid), byte(cid>>8))
	msg = append(msg, payload...)

	llid := pdu.LLIDStart
	for off := 0; off < len(msg) || off == 0; off += m.llPayload {
		end := off + m.llPayload
		if end > len(msg) {
			end = len(msg)
		}
		m.transport.Send(llid, msg[off:end])
		llid = pdu.LLIDContinuation
		if end == len(msg) {
			break
		}
	}
}

// HandlePDU feeds one received LL data PDU into reassembly. Call it from
// the connection's OnData hook.
func (m *Mux) HandlePDU(p pdu.DataPDU) {
	switch p.Header.LLID {
	case pdu.LLIDStart:
		if m.rxPartial {
			m.fail(fmt.Errorf("%w: new start with %d bytes pending", ErrReassembly, m.rxWant-len(m.rxBuf)))
		}
		if len(p.Payload) < HeaderSize {
			m.fail(fmt.Errorf("%w: start fragment %d bytes", ErrReassembly, len(p.Payload)))
			return
		}
		sduLen := int(p.Payload[0]) | int(p.Payload[1])<<8
		m.rxCID = uint16(p.Payload[2]) | uint16(p.Payload[3])<<8
		m.rxWant = sduLen
		m.rxBuf = append(m.rxBuf[:0], p.Payload[HeaderSize:]...)
		m.rxPartial = true
		m.maybeComplete()
	case pdu.LLIDContinuation:
		if len(p.Payload) == 0 {
			return // empty PDU (keep-alive), not a fragment
		}
		if !m.rxPartial {
			m.fail(fmt.Errorf("%w: continuation without start", ErrReassembly))
			return
		}
		m.rxBuf = append(m.rxBuf, p.Payload...)
		m.maybeComplete()
	default:
		// LL control PDUs never reach L2CAP.
	}
}

// maybeComplete dispatches the message once fully reassembled.
func (m *Mux) maybeComplete() {
	if len(m.rxBuf) < m.rxWant {
		return
	}
	if len(m.rxBuf) > m.rxWant {
		m.fail(fmt.Errorf("%w: got %d bytes, header said %d", ErrReassembly, len(m.rxBuf), m.rxWant))
		return
	}
	m.rxPartial = false
	h := m.handlers[m.rxCID]
	if h == nil {
		return // unknown channel: silently dropped per spec for LE fixed channels
	}
	msg := append([]byte(nil), m.rxBuf...)
	h(msg)
}

// fail resets reassembly and reports the error.
func (m *Mux) fail(err error) {
	m.rxPartial = false
	m.rxBuf = m.rxBuf[:0]
	if m.OnError != nil {
		m.OnError(err)
	}
}
