package sim

import "fmt"

// event is one scheduled callback. Events are owned by their Scheduler and
// recycled through a free list once they run or a cancelled entry is popped;
// user code refers to them only through generation-checked EventRefs, so a
// stale reference can never touch a recycled (and possibly rescheduled)
// struct.
type event struct {
	at     Time
	seq    uint64 // tie-breaker: FIFO among events at the same instant
	fn     func()
	label  string
	gen    uint32 // incremented on recycle; EventRefs must match to act
	cancel bool
	next   *event // free-list link
}

// EventRef is a handle to a scheduled event. The zero EventRef is valid and
// refers to nothing (Cancel is a no-op on it). A ref goes stale once its
// event runs or its cancelled slot is reclaimed; stale refs are inert — all
// methods return zero values and Cancel does nothing — so holding a ref
// past an event's lifetime is always safe.
type EventRef struct {
	e   *event
	gen uint32
}

// live reports whether the ref still addresses its original scheduling.
func (r EventRef) live() bool { return r.e != nil && r.e.gen == r.gen }

// At returns the instant the event is scheduled for, or 0 if the ref is
// stale (the event already ran or was reclaimed).
func (r EventRef) At() Time {
	if !r.live() {
		return 0
	}
	return r.e.at
}

// Label returns the label given at scheduling time, or "" for a stale ref.
func (r EventRef) Label() string {
	if !r.live() {
		return ""
	}
	return r.e.label
}

// Cancelled reports whether Cancel hit this scheduling before it ran. Once
// the event is reclaimed (it ran, or its cancelled slot was popped) the ref
// is stale and Cancelled reports false.
func (r EventRef) Cancelled() bool { return r.live() && r.e.cancel }

// Pending reports whether the event is still scheduled to run: live and
// not cancelled.
func (r EventRef) Pending() bool { return r.live() && !r.e.cancel }

// Scheduler is a deterministic single-threaded discrete-event scheduler.
// Events scheduled for the same instant run in FIFO order. The zero value
// is ready to use.
//
// The event queue is an inlined 4-ary min-heap over a slice of recycled
// event structs: scheduling and stepping allocate nothing in steady state
// (no container/heap interface boxing, no per-event garbage). Cancellation
// is lazy — a cancelled event stays queued until its instant is reached and
// is skipped and reclaimed then — which is why Pending() counts cancelled
// events that have not yet been popped.
type Scheduler struct {
	now    Time
	heap   []*event // 4-ary min-heap ordered by (at, seq)
	seq    uint64
	halted bool
	ran    uint64
	free   *event // recycled events
}

// NewScheduler returns an empty scheduler positioned at time zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Pending returns the number of events waiting to run (including cancelled
// events that have not yet been popped).
func (s *Scheduler) Pending() int { return len(s.heap) }

// Processed returns the total number of events executed so far.
func (s *Scheduler) Processed() uint64 { return s.ran }

// alloc takes an event from the free list or the heap allocator.
func (s *Scheduler) alloc() *event {
	if e := s.free; e != nil {
		s.free = e.next
		e.next = nil
		return e
	}
	return &event{}
}

// recycle returns a popped event to the free list, invalidating every
// EventRef issued for it and releasing its callback.
func (s *Scheduler) recycle(e *event) {
	e.gen++
	e.fn = nil
	e.label = ""
	e.cancel = false
	e.next = s.free
	s.free = e
}

// At schedules fn to run at the absolute instant t. Scheduling in the past
// panics: it is always a logic error in a discrete-event model.
func (s *Scheduler) At(t Time, label string, fn func()) EventRef {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v, before now %v", label, t, s.now))
	}
	s.seq++
	e := s.alloc()
	e.at, e.seq, e.fn, e.label = t, s.seq, fn, label
	s.push(e)
	return EventRef{e: e, gen: e.gen}
}

// After schedules fn to run d after the current instant.
func (s *Scheduler) After(d Duration, label string, fn func()) EventRef {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), label, fn)
}

// Cancel prevents a scheduled event from running. Cancelling a stale ref —
// the event already ran, was already reclaimed, or the ref is zero — is a
// no-op, as is cancelling twice.
func (s *Scheduler) Cancel(ref EventRef) {
	if !ref.live() {
		return
	}
	ref.e.cancel = true
}

// less orders events by (at, seq).
func less(a, b *event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// push appends e and sifts it up the 4-ary heap.
func (s *Scheduler) push(e *event) {
	s.heap = append(s.heap, e)
	i := len(s.heap) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !less(e, s.heap[p]) {
			break
		}
		s.heap[i] = s.heap[p]
		i = p
	}
	s.heap[i] = e
}

// pop removes and returns the minimum event. The heap must be non-empty.
func (s *Scheduler) pop() *event {
	h := s.heap
	top := h[0]
	n := len(h) - 1
	e := h[n]
	h[n] = nil
	s.heap = h[:n]
	if n == 0 {
		return top
	}
	// Sift the former last element down from the root.
	h = s.heap
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if less(h[j], h[m]) {
				m = j
			}
		}
		if !less(h[m], e) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = e
	return top
}

// peek discards (and reclaims) cancelled events at the top of the heap and
// returns the next runnable event without removing it, or nil.
func (s *Scheduler) peek() *event {
	for len(s.heap) > 0 {
		e := s.heap[0]
		if !e.cancel {
			return e
		}
		s.recycle(s.pop())
	}
	return nil
}

// Step runs the single next event. It reports false when the queue is empty
// or the scheduler has been halted.
func (s *Scheduler) Step() bool {
	if s.halted || s.peek() == nil {
		return false
	}
	e := s.pop()
	if e.at < s.now {
		panic(fmt.Sprintf("sim: time went backwards: %v < %v", e.at, s.now))
	}
	s.now = e.at
	s.ran++
	fn := e.fn
	s.recycle(e)
	fn()
	return true
}

// Run executes events until the queue drains or the scheduler halts.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with time ≤ deadline. The clock is advanced to
// the deadline afterwards, even if the queue drained earlier.
func (s *Scheduler) RunUntil(deadline Time) {
	for !s.halted {
		e := s.peek()
		if e == nil || e.at > deadline {
			break
		}
		s.Step()
	}
	if !s.halted && s.now < deadline {
		s.now = deadline
	}
}

// RunFor executes events for a span d of virtual time from now.
func (s *Scheduler) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

// Halt stops the scheduler: Step/Run/RunUntil return immediately afterwards.
func (s *Scheduler) Halt() { s.halted = true }

// Halted reports whether Halt has been called.
func (s *Scheduler) Halted() bool { return s.halted }
