package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. The zero Event is invalid.
type Event struct {
	at     Time
	seq    uint64 // tie-breaker: FIFO among events at the same instant
	fn     func()
	label  string
	index  int // heap index, -1 once popped or cancelled
	cancel bool
}

// At returns the instant the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Label returns the human-readable label given at scheduling time.
func (e *Event) Label() string { return e.label }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancel }

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Scheduler is a deterministic single-threaded discrete-event scheduler.
// Events scheduled for the same instant run in FIFO order. The zero value
// is ready to use.
type Scheduler struct {
	now    Time
	queue  eventQueue
	seq    uint64
	halted bool
	ran    uint64
}

// NewScheduler returns an empty scheduler positioned at time zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Pending returns the number of events waiting to run (including cancelled
// events that have not yet been popped).
func (s *Scheduler) Pending() int { return len(s.queue) }

// Processed returns the total number of events executed so far.
func (s *Scheduler) Processed() uint64 { return s.ran }

// At schedules fn to run at the absolute instant t. Scheduling in the past
// panics: it is always a logic error in a discrete-event model.
func (s *Scheduler) At(t Time, label string, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v, before now %v", label, t, s.now))
	}
	s.seq++
	e := &Event{at: t, seq: s.seq, fn: fn, label: label}
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d after the current instant.
func (s *Scheduler) After(d Duration, label string, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), label, fn)
}

// Cancel prevents a scheduled event from running. Cancelling an event that
// already ran (or was already cancelled) is a no-op.
func (s *Scheduler) Cancel(e *Event) {
	if e == nil || e.cancel {
		return
	}
	e.cancel = true
	if e.index >= 0 {
		heap.Remove(&s.queue, e.index)
		e.index = -1
	}
}

// Step runs the single next event. It reports false when the queue is empty
// or the scheduler has been halted.
func (s *Scheduler) Step() bool {
	for {
		if s.halted || len(s.queue) == 0 {
			return false
		}
		e := heap.Pop(&s.queue).(*Event)
		if e.cancel {
			continue
		}
		if e.at < s.now {
			panic(fmt.Sprintf("sim: time went backwards: %v < %v", e.at, s.now))
		}
		s.now = e.at
		s.ran++
		e.fn()
		return true
	}
}

// Run executes events until the queue drains or the scheduler halts.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with time ≤ deadline. The clock is advanced to
// the deadline afterwards, even if the queue drained earlier.
func (s *Scheduler) RunUntil(deadline Time) {
	for !s.halted && len(s.queue) > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	if !s.halted && s.now < deadline {
		s.now = deadline
	}
}

// RunFor executes events for a span d of virtual time from now.
func (s *Scheduler) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

// Halt stops the scheduler: Step/Run/RunUntil return immediately afterwards.
func (s *Scheduler) Halt() { s.halted = true }

// Halted reports whether Halt has been called.
func (s *Scheduler) Halted() bool { return s.halted }
