package sim

import (
	"strings"
	"testing"
)

func TestRecordingTracerFilters(t *testing.T) {
	tr := NewRecordingTracer("tx")
	Emit(tr, Time(0), "radio", "tx", map[string]any{"ch": 12})
	Emit(tr, Time(1), "radio", "rx", nil)
	if len(tr.Events) != 1 || tr.Events[0].Kind != "tx" {
		t.Fatalf("events = %+v", tr.Events)
	}
}

func TestRecordingTracerFilterMethod(t *testing.T) {
	tr := NewRecordingTracer()
	Emit(tr, 0, "a", "x", nil)
	Emit(tr, 1, "a", "y", nil)
	Emit(tr, 2, "a", "x", nil)
	if got := len(tr.Filter("x")); got != 2 {
		t.Fatalf("Filter(x) = %d events, want 2", got)
	}
}

func TestWriterTracerOutput(t *testing.T) {
	var b strings.Builder
	tr := WriterTracer{W: &b}
	Emit(tr, Time(150*Microsecond), "slave", "anchor", map[string]any{"ch": 7, "ev": 3})
	out := b.String()
	for _, want := range []string{"slave", "anchor", "ch=7", "ev=3"} {
		if !strings.Contains(out, want) {
			t.Errorf("output %q missing %q", out, want)
		}
	}
	// Fields must render in sorted key order for determinism.
	if strings.Index(out, "ch=") > strings.Index(out, "ev=") {
		t.Errorf("fields unsorted: %q", out)
	}
}

func TestMultiTracerFansOut(t *testing.T) {
	a, b := NewRecordingTracer(), NewRecordingTracer()
	m := MultiTracer{a, b}
	Emit(m, 0, "x", "k", nil)
	if len(a.Events) != 1 || len(b.Events) != 1 {
		t.Fatal("fan-out failed")
	}
}

func TestEmitNilTracer(t *testing.T) {
	Emit(nil, 0, "x", "k", nil) // must not panic
}
