package sim

import (
	"strings"
	"testing"
)

func TestRecordingTracerFilters(t *testing.T) {
	tr := NewRecordingTracer("tx")
	Emit(tr, Time(0), "radio", "tx", func() []Field { return []Field{F("ch", 12)} })
	Emit(tr, Time(1), "radio", "rx", nil)
	if len(tr.Events) != 1 || tr.Events[0].Kind != "tx" {
		t.Fatalf("events = %+v", tr.Events)
	}
}

func TestRecordingTracerFilterMethod(t *testing.T) {
	tr := NewRecordingTracer()
	Emit(tr, 0, "a", "x", nil)
	Emit(tr, 1, "a", "y", nil)
	Emit(tr, 2, "a", "x", nil)
	if got := len(tr.Filter("x")); got != 2 {
		t.Fatalf("Filter(x) = %d events, want 2", got)
	}
}

func TestWriterTracerOutput(t *testing.T) {
	var b strings.Builder
	tr := WriterTracer{W: &b}
	Emit(tr, Time(150*Microsecond), "slave", "anchor", func() []Field { return []Field{F("ev", 3), F("ch", 7)} })
	out := b.String()
	for _, want := range []string{"slave", "anchor", "ch=7", "ev=3"} {
		if !strings.Contains(out, want) {
			t.Errorf("output %q missing %q", out, want)
		}
	}
	// Fields must render in sorted key order for determinism.
	if strings.Index(out, "ch=") > strings.Index(out, "ev=") {
		t.Errorf("fields unsorted: %q", out)
	}
}

func TestMultiTracerFansOut(t *testing.T) {
	a, b := NewRecordingTracer(), NewRecordingTracer()
	m := MultiTracer{a, b}
	Emit(m, 0, "x", "k", nil)
	if len(a.Events) != 1 || len(b.Events) != 1 {
		t.Fatal("fan-out failed")
	}
}

func TestEmitNilTracer(t *testing.T) {
	Emit(nil, 0, "x", "k", nil) // must not panic
}

func TestEmitLazyFieldsSkippedWhenDisabled(t *testing.T) {
	built := 0
	fields := func() []Field { built++; return []Field{F("n", 1)} }
	Emit(nil, 0, "x", "k", fields)
	if built != 0 {
		t.Fatal("field builder invoked under a nil tracer")
	}
	tr := NewRecordingTracer()
	Emit(tr, 0, "x", "k", fields)
	if built != 1 {
		t.Fatalf("field builder invoked %d times under a live tracer, want 1", built)
	}
	if v, ok := tr.Events[0].Field("n"); !ok || v != 1 {
		t.Fatalf("Field(n) = %v, %v", v, ok)
	}
	if _, ok := tr.Events[0].Field("missing"); ok {
		t.Fatal("Field reported a missing key")
	}
}

func TestEmitNilTracerZeroAlloc(t *testing.T) {
	ch, n := 7, 42
	allocs := testing.AllocsPerRun(200, func() {
		Emit(nil, 0, "radio", "tx", func() []Field {
			return []Field{F("ch", ch), F("len", n)}
		})
	})
	if allocs != 0 {
		t.Fatalf("Emit with nil tracer allocates %v per call, want 0", allocs)
	}
}

func TestRecordingTracerEachOrder(t *testing.T) {
	tr := NewBoundedRecordingTracer(3)
	for i := 0; i < 5; i++ {
		Emit(tr, Time(i), "a", "k", nil)
	}
	var got []Time
	tr.Each(func(e TraceEvent) { got = append(got, e.At) })
	want := []Time{2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("Each visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Each visited %v, want %v", got, want)
		}
	}
}

func TestBoundedRecordingTracerRing(t *testing.T) {
	tr := NewBoundedRecordingTracer(3)
	for i := 0; i < 5; i++ {
		Emit(tr, Time(i), "a", "k", nil)
	}
	if len(tr.Events) != 3 {
		t.Fatalf("ring holds %d events, want 3", len(tr.Events))
	}
	if got := tr.Dropped(); got != 2 {
		t.Fatalf("Dropped() = %d, want 2", got)
	}
	snap := tr.Snapshot()
	for i, want := range []Time{2, 3, 4} {
		if snap[i].At != want {
			t.Fatalf("Snapshot()[%d].At = %v, want %v (snapshot %+v)", i, snap[i].At, want, snap)
		}
	}
	// Snapshot is a copy — mutating it must not touch the ring.
	snap[0].Kind = "mutated"
	if tr.Snapshot()[0].Kind != "k" {
		t.Fatal("Snapshot aliases the ring storage")
	}
}

func TestBoundedRecordingTracerUnderLimit(t *testing.T) {
	tr := NewBoundedRecordingTracer(10)
	Emit(tr, 0, "a", "x", nil)
	Emit(tr, 1, "a", "y", nil)
	if tr.Dropped() != 0 {
		t.Fatalf("Dropped() = %d before the ring is full", tr.Dropped())
	}
	snap := tr.Snapshot()
	if len(snap) != 2 || snap[0].Kind != "x" || snap[1].Kind != "y" {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestBoundedRecordingTracerFilterUnwindsRing(t *testing.T) {
	tr := NewBoundedRecordingTracer(2, "x", "y")
	Emit(tr, 0, "a", "x", nil)
	Emit(tr, 1, "a", "skip", nil) // filtered by kind, not counted as dropped
	Emit(tr, 2, "a", "y", nil)
	Emit(tr, 3, "a", "x", nil) // evicts the event at t=0
	got := tr.Filter("x")
	if len(got) != 1 || got[0].At != 3 {
		t.Fatalf("Filter(x) = %+v, want only the t=3 event", got)
	}
	if tr.Dropped() != 1 {
		t.Fatalf("Dropped() = %d, want 1", tr.Dropped())
	}
}
