package sim

import "testing"

// BenchmarkSchedulerAtStep measures the scheduler hot path: schedule one
// event, run it. Steady state must be allocation-free — events come from
// the free list and the 4-ary heap is an inlined slice, so nothing escapes.
func BenchmarkSchedulerAtStep(b *testing.B) {
	s := NewScheduler()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.At(s.Now(), "bench", fn)
		s.Step()
	}
}

// BenchmarkSchedulerChurn models the radio workload: a rolling window of
// pending events with out-of-order insertion and periodic cancellation.
func BenchmarkSchedulerChurn(b *testing.B) {
	s := NewScheduler()
	fn := func() {}
	const window = 64
	var refs [window]EventRef
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := i % window
		s.Cancel(refs[slot])
		refs[slot] = s.At(s.Now().Add(Duration((i*37)%1000)*Microsecond), "churn", fn)
		if i%4 == 0 {
			s.Step()
		}
	}
}

// BenchmarkEmitNilTracer is the disabled-tracing fast path: the lazy field
// builder must never run and nothing may allocate.
func BenchmarkEmitNilTracer(b *testing.B) {
	ch, ln := 7, 22
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Emit(nil, Time(i), "radio", "tx-start", func() []Field {
			return []Field{F("ch", ch), F("len", ln), F("noise", false)}
		})
	}
}

// BenchmarkEmitRecordingTracer is the enabled path: fields are built and
// retained, so allocations are expected — this pins their count.
func BenchmarkEmitRecordingTracer(b *testing.B) {
	tr := NewBoundedRecordingTracer(1024)
	ch, ln := 7, 22
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Emit(tr, Time(i), "radio", "tx-start", func() []Field {
			return []Field{F("ch", ch), F("len", ln), F("noise", false)}
		})
	}
}

// BenchmarkByteArenaCopy pins the arena clone path used for frame PDUs.
func BenchmarkByteArenaCopy(b *testing.B) {
	a := NewByteArena()
	pdu := make([]byte, 22)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%1024 == 0 {
			a.Reset()
		}
		_ = a.Copy(pdu)
	}
}
