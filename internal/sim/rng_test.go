package sim

import (
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGChildIndependence(t *testing.T) {
	parent := NewRNG(42)
	c1 := parent.Child("medium")
	// Consuming from c1 must not affect a later-derived identical child.
	for i := 0; i < 10; i++ {
		c1.Uint64()
	}
	c1b := parent.Child("medium")
	c2 := NewRNG(42).Child("medium")
	if c1b.Uint64() != c2.Uint64() {
		t.Fatal("Child not a pure function of (seed, name)")
	}
}

func TestRNGChildNamesDiffer(t *testing.T) {
	parent := NewRNG(42)
	a := parent.Child("a")
	b := parent.Child("b")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("children by different names correlated: %d/64 equal", same)
	}
}

func TestRNGChildNIndependence(t *testing.T) {
	parent := NewRNG(42)
	// Pure function of (seed, name, n): consuming from one derived stream
	// must not affect a re-derivation, and siblings must not correlate.
	a := parent.ChildN("trial", 0)
	for i := 0; i < 10; i++ {
		a.Uint64()
	}
	if NewRNG(42).ChildN("trial", 0).Uint64() != parent.ChildN("trial", 0).Uint64() {
		t.Fatal("ChildN not a pure function of (seed, name, n)")
	}
	b := parent.ChildN("trial", 1)
	c := parent.ChildN("trial", 2)
	same := 0
	for i := 0; i < 64; i++ {
		if b.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling indexed streams correlated: %d/64 equal", same)
	}
	// ChildN must not collide with the name-only Child derivation.
	if parent.Child("trial").Seed() == parent.ChildN("trial", 0).Seed() {
		t.Fatal("ChildN(name, 0) collides with Child(name)")
	}
}

func TestRNGChildNStableAcrossGoVersions(t *testing.T) {
	// The derivation is FNV-1a (spec-fixed) feeding math/rand (sequence
	// frozen by the Go 1 compatibility promise). These goldens pin both:
	// a toolchain that changes either breaks every recorded campaign seed.
	goldens := []struct {
		n           int
		seed, first uint64
	}{
		{0, 0x35940eebe736188d, 0xcdb719a430f31032},
		{1, 0x169947e2dc46ce6c, 0xedfc75a2a0075f8c},
		{2, 0x73899cfdfd14accf, 0xfdeccebbd679a618},
	}
	g := NewRNG(42)
	for _, want := range goldens {
		c := g.ChildN("trial", want.n)
		if c.Seed() != want.seed {
			t.Errorf("ChildN(trial, %d).Seed() = %#x, want %#x", want.n, c.Seed(), want.seed)
		}
		if got := c.Uint64(); got != want.first {
			t.Errorf("ChildN(trial, %d) first draw = %#x, want %#x", want.n, got, want.first)
		}
	}
}

func TestRNGDurationBounds(t *testing.T) {
	g := NewRNG(7)
	for i := 0; i < 1000; i++ {
		d := g.Duration(150 * Microsecond)
		if d < 0 || d >= 150*Microsecond {
			t.Fatalf("Duration out of range: %v", d)
		}
	}
	if g.Duration(0) != 0 || g.Duration(-5) != 0 {
		t.Fatal("non-positive bound should give 0")
	}
}

func TestRNGBoolProbability(t *testing.T) {
	g := NewRNG(9)
	n, hits := 10000, 0
	for i := 0; i < n; i++ {
		if g.Bool(0.25) {
			hits++
		}
	}
	p := float64(hits) / float64(n)
	if p < 0.22 || p > 0.28 {
		t.Fatalf("Bool(0.25) frequency = %.3f", p)
	}
}

func TestRNGBytes(t *testing.T) {
	g := NewRNG(11)
	b := make([]byte, 32)
	g.Bytes(b)
	allZero := true
	for _, v := range b {
		if v != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("Bytes returned all zeros")
	}
}

func TestRNGNormalMoments(t *testing.T) {
	g := NewRNG(13)
	var sum float64
	n := 5000
	for i := 0; i < n; i++ {
		sum += g.Normal(10, 2)
	}
	mean := sum / float64(n)
	if mean < 9.8 || mean > 10.2 {
		t.Fatalf("Normal(10,2) mean = %.3f", mean)
	}
}
