package sim

import (
	"fmt"
	"reflect"
	"strings"
	"unsafe"
)

// This file is the generic state-capture engine behind world snapshot/fork:
// a reflection-based deep capture of every mutable object reachable from a
// set of root pointers, restorable in place.
//
// Capture walks the object graph through pointers, interfaces, slices,
// arrays and maps, taking a shallow typed copy of each visited object keyed
// by (address, type). Restore writes those copies back into the live
// objects, rolling the whole graph back to its capture-time state. Because
// the copies are typed and written back with reflect.Value.Set, the garbage
// collector sees every save and restore (write barriers included), and the
// copies themselves keep each captured object alive between Capture and the
// final Restore.
//
// What the engine deliberately does NOT do:
//
//   - It never looks inside function values. A closure's code pointer is
//     saved and restored as part of its owner's bytes — closures created
//     before the snapshot keep working after a restore because everything
//     they reference through struct fields is rolled back too — but a
//     mutable local captured ONLY by a closure is invisible to the walk and
//     will not be rolled back. Snapshot-compatible code must keep mutable
//     state in struct fields reachable from a root (internal/simtest's fork
//     swarm enforces this empirically across randomized worlds).
//   - It does not traverse into channels or strings (immutable/opaque).
//   - It only manages objects whose types live in this module (or in
//     math/rand, so *rand.Rand internals — the PRNG stream position — are
//     captured without changing the algorithm). Pointers to foreign types
//     (testing.T, os.File, io.Writer implementations, …) are restored as
//     pointers but their pointees are left alone: rolling back a *testing.T
//     or a file's state would be actively wrong.
//
// Slices are saved as regions: the backing array contents over [0:cap] are
// copied out and restored, so post-snapshot appends within capacity and
// arena bump allocations roll back cleanly. Aliasing subslices restore
// consistently because every region's bytes were captured at the same
// instant. Maps are saved as key/value pairs and restored by clearing the
// live map and reinserting — the map object itself (not a replacement) is
// mutated, so every pointer to it stays valid.
//
// The engine is single-threaded, like the simulation it captures.

// modulePrefix gates which pointee types the engine manages.
const modulePrefix = "injectable"

// managedType reports whether the engine should capture objects of type t.
func managedType(t reflect.Type) bool {
	pp := t.PkgPath()
	if pp == "" {
		// Unnamed composites (*[]byte, *struct{…}) carry no package; they
		// only arise from module code in practice.
		return true
	}
	if pp == modulePrefix || strings.HasPrefix(pp, modulePrefix+"/") {
		return true
	}
	// math/rand's rngSource — reached through sim.RNG — is the one foreign
	// type whose state is simulation state.
	return pp == "math/rand"
}

// objKey identifies a captured object: distinct types may share an address
// (a struct and its first field), so the type is part of the key.
type objKey struct {
	ptr unsafe.Pointer
	typ reflect.Type
}

// savedObj pairs a live object with its capture-time shallow copy.
type savedObj struct {
	live reflect.Value // addressable value over the live object
	snap reflect.Value // detached copy taken at capture time
}

// savedRegion is one slice backing-array region [0:cap].
type savedRegion struct {
	live reflect.Value // slice over the live backing array, len == cap
	snap reflect.Value // copied contents
}

// savedMap is one live map with its capture-time pairs.
type savedMap struct {
	live reflect.Value
	keys []reflect.Value
	vals []reflect.Value
}

// Capture is a restorable deep snapshot of the object graph reachable from
// a set of roots. Create with CaptureRoots; Restore may be called any
// number of times (each call rolls the graph back to the capture instant).
type Capture struct {
	roots   []any
	objs    []savedObj
	regions []savedRegion
	maps    []savedMap
}

// walker performs the graph traversal shared by CaptureRoots and
// VisitRNGs.
type walker struct {
	cap      *Capture // nil when only visiting
	seen     map[objKey]struct{}
	mapSeen  map[unsafe.Pointer]struct{}
	visitRNG func(*RNG)
}

// CaptureRoots deep-captures everything reachable from the given root
// pointers. Roots must be non-nil pointers to module-managed objects.
func CaptureRoots(roots ...any) *Capture {
	c := &Capture{roots: roots}
	w := &walker{
		cap:     c,
		seen:    make(map[objKey]struct{}),
		mapSeen: make(map[unsafe.Pointer]struct{}),
	}
	w.walkRoots(roots)
	return c
}

// VisitRNGs walks the same graph CaptureRoots would and calls visit once
// for every *RNG encountered. It captures nothing. Used to rekey every
// random stream of a forked world without maintaining a manual stream
// registry.
func VisitRNGs(visit func(*RNG), roots ...any) {
	w := &walker{
		seen:     make(map[objKey]struct{}),
		mapSeen:  make(map[unsafe.Pointer]struct{}),
		visitRNG: visit,
	}
	w.walkRoots(roots)
}

func (w *walker) walkRoots(roots []any) {
	for _, r := range roots {
		if r == nil {
			continue
		}
		v := reflect.ValueOf(r)
		if v.Kind() != reflect.Ptr {
			panic(fmt.Sprintf("sim: snapshot root must be a pointer, got %T", r))
		}
		w.walk(v)
	}
}

var rngType = reflect.TypeOf(RNG{})

// walk visits one value. v may be unaddressable (a map key/value copy);
// traversal only needs the pointer values it contains.
func (w *walker) walk(v reflect.Value) {
	switch v.Kind() {
	case reflect.Ptr:
		if v.IsNil() {
			return
		}
		elemT := v.Type().Elem()
		if !managedType(elemT) {
			return
		}
		ptr := unsafe.Pointer(v.Pointer())
		key := objKey{ptr, elemT}
		if _, ok := w.seen[key]; ok {
			return
		}
		w.seen[key] = struct{}{}
		if w.visitRNG != nil && elemT == rngType {
			w.visitRNG((*RNG)(ptr))
		}
		live := reflect.NewAt(elemT, ptr).Elem()
		if w.cap != nil {
			snap := reflect.New(elemT).Elem()
			snap.Set(live)
			w.cap.objs = append(w.cap.objs, savedObj{live: live, snap: snap})
		}
		w.walk(live)

	case reflect.Interface:
		if v.IsNil() {
			return
		}
		e := v.Elem()
		switch e.Kind() {
		case reflect.Ptr, reflect.Map, reflect.Slice:
			w.walk(e)
		}
		// Non-pointer concretes boxed in an interface are unaddressable and
		// immutable through the interface; nothing to capture.

	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			f := v.Field(i)
			if !f.CanInterface() && f.CanAddr() {
				// De-restrict an unexported field so slices/maps found under
				// it can be copied and restored.
				f = reflect.NewAt(f.Type(), unsafe.Pointer(f.UnsafeAddr())).Elem()
			}
			w.walk(f)
		}

	case reflect.Array:
		if !hasPointers(v.Type().Elem()) {
			return // bytes captured with the owning object
		}
		for i := 0; i < v.Len(); i++ {
			w.walk(v.Index(i))
		}

	case reflect.Slice:
		if v.IsNil() || v.Cap() == 0 {
			return
		}
		elemT := v.Type().Elem()
		full := v.Slice3(0, v.Cap(), v.Cap())
		ptr := unsafe.Pointer(full.Pointer())
		key := objKey{ptr, reflect.ArrayOf(v.Cap(), elemT)}
		if _, ok := w.seen[key]; !ok {
			w.seen[key] = struct{}{}
			if w.cap != nil {
				snap := reflect.MakeSlice(v.Type(), v.Cap(), v.Cap())
				reflect.Copy(snap, full)
				w.cap.regions = append(w.cap.regions, savedRegion{live: full, snap: snap})
			}
		}
		if !hasPointers(elemT) {
			return
		}
		// Traverse only the live prefix: elements past len are retained
		// garbage from previous use, not reachable state.
		for i := 0; i < v.Len(); i++ {
			w.walk(v.Index(i))
		}

	case reflect.Map:
		if v.IsNil() {
			return
		}
		ptr := unsafe.Pointer(v.Pointer())
		if _, ok := w.mapSeen[ptr]; ok {
			return
		}
		w.mapSeen[ptr] = struct{}{}
		var sm *savedMap
		if w.cap != nil {
			w.cap.maps = append(w.cap.maps, savedMap{live: v})
			sm = &w.cap.maps[len(w.cap.maps)-1]
		}
		it := v.MapRange()
		kt, vt := v.Type().Key(), v.Type().Elem()
		for it.Next() {
			k := reflect.New(kt).Elem()
			k.Set(it.Key())
			val := reflect.New(vt).Elem()
			val.Set(it.Value())
			if sm != nil {
				sm.keys = append(sm.keys, k)
				sm.vals = append(sm.vals, val)
			}
			w.walk(k)
			w.walk(val)
		}
	}
}

// hasPointers reports whether values of t can reference other objects the
// walk must visit. Pointer-free element types (bytes, floats, plain
// structs) are captured wholesale by the region/owner copy and need no
// per-element traversal.
func hasPointers(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Ptr, reflect.Interface, reflect.Map, reflect.Slice, reflect.String,
		reflect.Chan, reflect.Func, reflect.UnsafePointer:
		return t.Kind() != reflect.String // strings are immutable; no visit needed
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if hasPointers(t.Field(i).Type) {
				return true
			}
		}
		return false
	case reflect.Array:
		return hasPointers(t.Elem())
	default:
		return false
	}
}

// Restore rolls every captured object, slice region and map back to its
// capture-time state. Objects created after the capture are simply dropped
// from the graph (whatever pointed to them is rolled back); the garbage
// collector reclaims them.
func (c *Capture) Restore() {
	for i := range c.objs {
		c.objs[i].live.Set(c.objs[i].snap)
	}
	for i := range c.regions {
		reflect.Copy(c.regions[i].live, c.regions[i].snap)
	}
	for i := range c.maps {
		m := &c.maps[i]
		// Clear additions, then reinstate capture-time pairs (overwriting
		// mutated values). The map object itself is mutated in place, so
		// every live reference to it stays valid.
		keys := m.live.MapKeys()
		for _, k := range keys {
			m.live.SetMapIndex(k, reflect.Value{})
		}
		for j := range m.keys {
			m.live.SetMapIndex(m.keys[j], m.vals[j])
		}
	}
}

// Objects reports how many distinct objects the capture holds (testing and
// diagnostics).
func (c *Capture) Objects() int { return len(c.objs) }
