package sim

import "hash/fnv"

// SchedulerSnapshot is a restorable capture of a scheduler: its clock, the
// event heap (including each queued event's callback, label and
// generation), the free list and the processed/sequence counters.
type SchedulerSnapshot struct {
	s   *Scheduler
	cap *Capture
}

// Snapshot captures the scheduler's complete state. Events scheduled after
// the snapshot are dropped by Restore; events that ran after the snapshot
// are re-queued exactly as they were, and EventRefs issued before the
// snapshot become valid again (generations are restored with the events).
func (s *Scheduler) Snapshot() *SchedulerSnapshot {
	return &SchedulerSnapshot{s: s, cap: CaptureRoots(s)}
}

// Restore rolls the scheduler back to the snapshot. The snapshot must have
// been taken from this scheduler; restoring a foreign snapshot panics,
// because queued callbacks close over their own world's object graph.
func (s *Scheduler) Restore(snap *SchedulerSnapshot) {
	if snap.s != s {
		panic("sim: restoring a snapshot taken from a different scheduler")
	}
	snap.cap.Restore()
}

// RNGSnapshot is a restorable capture of one random stream's position.
type RNGSnapshot struct {
	g   *RNG
	cap *Capture
}

// Snapshot captures the stream's exact position: the underlying generator
// state is saved, so draws after Restore replay the identical sequence the
// stream produced after the snapshot was taken.
func (g *RNG) Snapshot() *RNGSnapshot {
	return &RNGSnapshot{g: g, cap: CaptureRoots(g)}
}

// Restore rolls the stream back to the snapshot position. The snapshot
// must have been taken from this stream.
func (g *RNG) Restore(snap *RNGSnapshot) {
	if snap.g != g {
		panic("sim: restoring a snapshot taken from a different RNG")
	}
	snap.cap.Restore()
}

// Reseed re-initialises the stream in place to the exact state NewRNG(seed)
// would produce, without replacing the *RNG object — every component
// holding this stream sees the new sequence. This is how a forked world is
// given fresh per-trial randomness after a snapshot restore.
func (g *RNG) Reseed(seed uint64) {
	g.seed = seed
	g.r.Seed(int64(seed))
}

// Rekey reseeds the stream with a seed derived from its own current seed
// and salt (FNV-1a, like Child). Because the derivation depends only on
// the stream's identity — its construction seed — and the salt, rekeying
// every stream of a world gives a deterministic result independent of the
// order the streams are visited in.
func (g *RNG) Rekey(salt uint64) {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(g.seed >> (8 * i))
	}
	_, _ = h.Write(b[:])
	_, _ = h.Write([]byte("rekey"))
	for i := 0; i < 8; i++ {
		b[i] = byte(salt >> (8 * i))
	}
	_, _ = h.Write(b[:])
	g.Reseed(h.Sum64())
}
