package sim

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Field is one key/value pair attached to a TraceEvent. Fields are kept as
// an ordered slice rather than a map so building them is a single small
// allocation — and, via Emit's lazy builder, no allocation at all when
// tracing is disabled.
type Field struct {
	K string
	V any
}

// F builds a Field; it keeps lazy field-builder closures compact.
func F(k string, v any) Field { return Field{K: k, V: v} }

// FieldFunc lazily builds an event's fields. Emit only invokes it when a
// tracer is attached, so call sites pay nothing — no map, no slice, no
// boxing, no formatting — when tracing is off.
type FieldFunc func() []Field

// TraceEvent is one structured record emitted by a simulation component.
type TraceEvent struct {
	At     Time
	Source string // component that emitted the event, e.g. "slave-ll"
	Kind   string // event kind, e.g. "anchor", "tx", "rx", "inject"
	Fields []Field
}

// Field returns the value of the named field and whether it is present.
func (e TraceEvent) Field(key string) (any, bool) {
	for _, f := range e.Fields {
		if f.K == key {
			return f.V, true
		}
	}
	return nil, false
}

// String renders the event on one line for logs, fields sorted by key.
func (e TraceEvent) String() string {
	fields := append([]Field(nil), e.Fields...)
	sort.Slice(fields, func(i, j int) bool { return fields[i].K < fields[j].K })
	var b strings.Builder
	fmt.Fprintf(&b, "%v %-14s %-18s", e.At, e.Source, e.Kind)
	for _, f := range fields {
		fmt.Fprintf(&b, " %s=%v", f.K, f.V)
	}
	return b.String()
}

// Tracer receives structured trace events. Implementations must be safe to
// call from event callbacks (the simulation is single-threaded, so no
// locking is required).
type Tracer interface {
	Trace(e TraceEvent)
}

// NopTracer discards all events.
type NopTracer struct{}

// Trace implements Tracer by doing nothing.
func (NopTracer) Trace(TraceEvent) {}

var _ Tracer = NopTracer{}

// RecordingTracer appends every event to memory, optionally filtered by
// kind. With Limit set it becomes a drop-oldest ring buffer, so a
// long-running simulation can keep "the last N events" at constant memory;
// Dropped reports how many events fell off the front.
type RecordingTracer struct {
	Events []TraceEvent
	// Kinds, when non-empty, restricts recording to the listed kinds.
	Kinds map[string]bool
	// Limit, when positive, caps Events at Limit entries; once full, each
	// new event overwrites the oldest. Events is then a ring — use
	// Snapshot (or Filter) for the events in arrival order.
	Limit int

	head    int // ring write position when full
	dropped int
}

// NewRecordingTracer records every event kind, unbounded.
func NewRecordingTracer(kinds ...string) *RecordingTracer {
	t := &RecordingTracer{}
	if len(kinds) > 0 {
		t.Kinds = make(map[string]bool, len(kinds))
		for _, k := range kinds {
			t.Kinds[k] = true
		}
	}
	return t
}

// NewBoundedRecordingTracer records at most limit events, dropping the
// oldest once full (limit <= 0 means unbounded).
func NewBoundedRecordingTracer(limit int, kinds ...string) *RecordingTracer {
	t := NewRecordingTracer(kinds...)
	t.Limit = limit
	return t
}

// Trace implements Tracer.
func (t *RecordingTracer) Trace(e TraceEvent) {
	if t.Kinds != nil && !t.Kinds[e.Kind] {
		return
	}
	if t.Limit > 0 && len(t.Events) >= t.Limit {
		t.Events[t.head] = e
		t.head = (t.head + 1) % len(t.Events)
		t.dropped++
		return
	}
	t.Events = append(t.Events, e)
}

// Dropped returns how many events were discarded to honour Limit.
func (t *RecordingTracer) Dropped() int { return t.dropped }

// Each calls fn for every recorded event in arrival order, unwinding the
// ring in place (no copy) when Limit has been reached.
func (t *RecordingTracer) Each(fn func(e TraceEvent)) {
	for i := t.head; i < len(t.Events); i++ {
		fn(t.Events[i])
	}
	for i := 0; i < t.head; i++ {
		fn(t.Events[i])
	}
}

// Snapshot returns the recorded events in arrival order (unwinding the
// ring when Limit has been reached). The slice is a copy.
func (t *RecordingTracer) Snapshot() []TraceEvent {
	out := make([]TraceEvent, 0, len(t.Events))
	out = append(out, t.Events[t.head:]...)
	out = append(out, t.Events[:t.head]...)
	return out
}

// Filter returns the recorded events of a given kind, in arrival order. It
// walks the ring directly rather than materialising a Snapshot copy first.
func (t *RecordingTracer) Filter(kind string) []TraceEvent {
	var out []TraceEvent
	t.Each(func(e TraceEvent) {
		if e.Kind == kind {
			out = append(out, e)
		}
	})
	return out
}

var _ Tracer = (*RecordingTracer)(nil)

// WriterTracer prints each event to an io.Writer as it happens.
type WriterTracer struct{ W io.Writer }

// Trace implements Tracer.
func (t WriterTracer) Trace(e TraceEvent) { fmt.Fprintln(t.W, e.String()) }

var _ Tracer = WriterTracer{}

// MultiTracer fans events out to several tracers.
type MultiTracer []Tracer

// Trace implements Tracer.
func (m MultiTracer) Trace(e TraceEvent) {
	for _, t := range m {
		t.Trace(e)
	}
}

var _ Tracer = MultiTracer{}

// Emit is the hot-path tracing entry point for components holding a Tracer
// and a Scheduler. fields (which may be nil) is only invoked when tr is
// non-nil: with tracing off the call costs a nil check and nothing else —
// the lazy builder closure lives on the caller's stack because it never
// escapes this function.
func Emit(tr Tracer, at Time, source, kind string, fields FieldFunc) {
	if tr == nil {
		return
	}
	var fs []Field
	if fields != nil {
		fs = fields()
	}
	tr.Trace(TraceEvent{At: at, Source: source, Kind: kind, Fields: fs})
}
