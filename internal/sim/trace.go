package sim

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// TraceEvent is one structured record emitted by a simulation component.
type TraceEvent struct {
	At     Time
	Source string // component that emitted the event, e.g. "slave-ll"
	Kind   string // event kind, e.g. "anchor", "tx", "rx", "inject"
	Fields map[string]any
}

// String renders the event on one line for logs.
func (e TraceEvent) String() string {
	keys := make([]string, 0, len(e.Fields))
	for k := range e.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "%v %-14s %-18s", e.At, e.Source, e.Kind)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%v", k, e.Fields[k])
	}
	return b.String()
}

// Tracer receives structured trace events. Implementations must be safe to
// call from event callbacks (the simulation is single-threaded, so no
// locking is required).
type Tracer interface {
	Trace(e TraceEvent)
}

// NopTracer discards all events.
type NopTracer struct{}

// Trace implements Tracer by doing nothing.
func (NopTracer) Trace(TraceEvent) {}

var _ Tracer = NopTracer{}

// RecordingTracer appends every event to memory, optionally filtered by kind.
type RecordingTracer struct {
	Events []TraceEvent
	// Kinds, when non-empty, restricts recording to the listed kinds.
	Kinds map[string]bool
}

// NewRecordingTracer records every event kind.
func NewRecordingTracer(kinds ...string) *RecordingTracer {
	t := &RecordingTracer{}
	if len(kinds) > 0 {
		t.Kinds = make(map[string]bool, len(kinds))
		for _, k := range kinds {
			t.Kinds[k] = true
		}
	}
	return t
}

// Trace implements Tracer.
func (t *RecordingTracer) Trace(e TraceEvent) {
	if t.Kinds != nil && !t.Kinds[e.Kind] {
		return
	}
	t.Events = append(t.Events, e)
}

// Filter returns the recorded events of a given kind.
func (t *RecordingTracer) Filter(kind string) []TraceEvent {
	var out []TraceEvent
	for _, e := range t.Events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

var _ Tracer = (*RecordingTracer)(nil)

// WriterTracer prints each event to an io.Writer as it happens.
type WriterTracer struct{ W io.Writer }

// Trace implements Tracer.
func (t WriterTracer) Trace(e TraceEvent) { fmt.Fprintln(t.W, e.String()) }

var _ Tracer = WriterTracer{}

// MultiTracer fans events out to several tracers.
type MultiTracer []Tracer

// Trace implements Tracer.
func (m MultiTracer) Trace(e TraceEvent) {
	for _, t := range m {
		t.Trace(e)
	}
}

var _ Tracer = MultiTracer{}

// Emit is a convenience for components holding a Tracer and a Scheduler.
func Emit(tr Tracer, at Time, source, kind string, fields map[string]any) {
	if tr == nil {
		return
	}
	tr.Trace(TraceEvent{At: at, Source: source, Kind: kind, Fields: fields})
}
