package sim

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// TraceEvent is one structured record emitted by a simulation component.
type TraceEvent struct {
	At     Time
	Source string // component that emitted the event, e.g. "slave-ll"
	Kind   string // event kind, e.g. "anchor", "tx", "rx", "inject"
	Fields map[string]any
}

// String renders the event on one line for logs.
func (e TraceEvent) String() string {
	keys := make([]string, 0, len(e.Fields))
	for k := range e.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "%v %-14s %-18s", e.At, e.Source, e.Kind)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%v", k, e.Fields[k])
	}
	return b.String()
}

// Tracer receives structured trace events. Implementations must be safe to
// call from event callbacks (the simulation is single-threaded, so no
// locking is required).
type Tracer interface {
	Trace(e TraceEvent)
}

// NopTracer discards all events.
type NopTracer struct{}

// Trace implements Tracer by doing nothing.
func (NopTracer) Trace(TraceEvent) {}

var _ Tracer = NopTracer{}

// RecordingTracer appends every event to memory, optionally filtered by
// kind. With Limit set it becomes a drop-oldest ring buffer, so a
// long-running simulation can keep "the last N events" at constant memory;
// Dropped reports how many events fell off the front.
type RecordingTracer struct {
	Events []TraceEvent
	// Kinds, when non-empty, restricts recording to the listed kinds.
	Kinds map[string]bool
	// Limit, when positive, caps Events at Limit entries; once full, each
	// new event overwrites the oldest. Events is then a ring — use
	// Snapshot (or Filter) for the events in arrival order.
	Limit int

	head    int // ring write position when full
	dropped int
}

// NewRecordingTracer records every event kind, unbounded.
func NewRecordingTracer(kinds ...string) *RecordingTracer {
	t := &RecordingTracer{}
	if len(kinds) > 0 {
		t.Kinds = make(map[string]bool, len(kinds))
		for _, k := range kinds {
			t.Kinds[k] = true
		}
	}
	return t
}

// NewBoundedRecordingTracer records at most limit events, dropping the
// oldest once full (limit <= 0 means unbounded).
func NewBoundedRecordingTracer(limit int, kinds ...string) *RecordingTracer {
	t := NewRecordingTracer(kinds...)
	t.Limit = limit
	return t
}

// Trace implements Tracer.
func (t *RecordingTracer) Trace(e TraceEvent) {
	if t.Kinds != nil && !t.Kinds[e.Kind] {
		return
	}
	if t.Limit > 0 && len(t.Events) >= t.Limit {
		t.Events[t.head] = e
		t.head = (t.head + 1) % len(t.Events)
		t.dropped++
		return
	}
	t.Events = append(t.Events, e)
}

// Dropped returns how many events were discarded to honour Limit.
func (t *RecordingTracer) Dropped() int { return t.dropped }

// Snapshot returns the recorded events in arrival order (unwinding the
// ring when Limit has been reached). The slice is a copy.
func (t *RecordingTracer) Snapshot() []TraceEvent {
	out := make([]TraceEvent, 0, len(t.Events))
	out = append(out, t.Events[t.head:]...)
	out = append(out, t.Events[:t.head]...)
	return out
}

// Filter returns the recorded events of a given kind, in arrival order.
func (t *RecordingTracer) Filter(kind string) []TraceEvent {
	var out []TraceEvent
	for _, e := range t.Snapshot() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

var _ Tracer = (*RecordingTracer)(nil)

// WriterTracer prints each event to an io.Writer as it happens.
type WriterTracer struct{ W io.Writer }

// Trace implements Tracer.
func (t WriterTracer) Trace(e TraceEvent) { fmt.Fprintln(t.W, e.String()) }

var _ Tracer = WriterTracer{}

// MultiTracer fans events out to several tracers.
type MultiTracer []Tracer

// Trace implements Tracer.
func (m MultiTracer) Trace(e TraceEvent) {
	for _, t := range m {
		t.Trace(e)
	}
}

var _ Tracer = MultiTracer{}

// Emit is a convenience for components holding a Tracer and a Scheduler.
func Emit(tr Tracer, at Time, source, kind string, fields map[string]any) {
	if tr == nil {
		return
	}
	tr.Trace(TraceEvent{At: at, Source: source, Kind: kind, Fields: fields})
}
