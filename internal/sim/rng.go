package sim

import (
	"hash/fnv"
	"math/rand"
)

// RNG is a deterministic random stream. Components derive their own child
// streams by name so that adding randomness consumption to one component
// does not perturb the draws seen by another — a property the experiment
// harness relies on for reproducible sweeps.
//
// An RNG is NOT goroutine-safe: concurrent draws from one stream race and
// destroy reproducibility. Concurrent consumers must each derive their own
// stream via Child/ChildN — the campaign engine does exactly that, giving
// every trial a private stream keyed by (seed base, point, trial index).
type RNG struct {
	seed uint64
	r    *rand.Rand
}

// NewRNG returns a stream seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{seed: seed, r: rand.New(rand.NewSource(int64(seed)))}
}

// Child derives an independent stream from this stream's seed and a name.
// Calling Child never consumes randomness from the parent.
func (g *RNG) Child(name string) *RNG {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(g.seed >> (8 * i))
	}
	_, _ = h.Write(b[:])
	_, _ = h.Write([]byte(name))
	return NewRNG(h.Sum64())
}

// ChildN derives an independent stream from this stream's seed, a name and
// an index — Child for indexed families (trial i of a sweep point, device
// i of a fleet). Like Child it is a pure function of (seed, name, n): it
// never consumes randomness from the parent, and the derivation (FNV-1a
// over the seed, the name and the little-endian index) is stable across Go
// versions.
func (g *RNG) ChildN(name string, n int) *RNG {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(g.seed >> (8 * i))
	}
	_, _ = h.Write(b[:])
	_, _ = h.Write([]byte(name))
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(n) >> (8 * i))
	}
	_, _ = h.Write(b[:])
	return NewRNG(h.Sum64())
}

// Seed returns the seed of this stream.
func (g *RNG) Seed() uint64 { return g.seed }

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// NormFloat64 returns a standard normal sample.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Intn returns a uniform int in [0, n). n must be positive.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Uint32 returns a uniform 32-bit value.
func (g *RNG) Uint32() uint32 { return g.r.Uint32() }

// Uint64 returns a uniform 64-bit value.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Bytes fills b with random bytes.
func (g *RNG) Bytes(b []byte) {
	_, _ = g.r.Read(b)
}

// Duration returns a uniform duration in [0, d).
func (g *RNG) Duration(d Duration) Duration {
	if d <= 0 {
		return 0
	}
	return Duration(g.r.Int63n(int64(d)))
}

// Normal returns a normal sample with the given mean and standard deviation.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }
