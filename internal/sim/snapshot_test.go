package sim

import (
	"reflect"
	"testing"
)

// drainLog runs the scheduler to completion and returns the order and
// times of executed events via the shared log slice.
func TestSchedulerSnapshotRestoreReplaysIdentically(t *testing.T) {
	s := NewScheduler()
	var log []string
	mark := func(name string) func() { return func() { log = append(log, name) } }
	s.At(10, "a", mark("a"))
	s.At(20, "b", mark("b"))
	s.At(20, "c", mark("c")) // FIFO tie with b
	s.Step()                 // run "a" so the free list is non-empty

	snap := s.Snapshot()
	ran0, now0, pending0 := s.Processed(), s.Now(), s.Pending()

	s.After(5, "d", mark("d"))
	s.Run()
	first := append([]string(nil), log...)

	s.Restore(snap)
	if s.Processed() != ran0 || s.Now() != now0 || s.Pending() != pending0 {
		t.Fatalf("restore: ran=%d now=%v pending=%d, want %d %v %d",
			s.Processed(), s.Now(), s.Pending(), ran0, now0, pending0)
	}
	log = log[:1] // keep "a", replay the rest
	s.After(5, "d", mark("d"))
	s.Run()
	if !reflect.DeepEqual(log, first) {
		t.Fatalf("replay order %v != first run %v", log, first)
	}
}

func TestSchedulerSnapshotDropsPostSnapshotEvents(t *testing.T) {
	s := NewScheduler()
	fired := 0
	s.At(10, "pre", func() { fired++ })
	snap := s.Snapshot()
	s.At(5, "post", func() { fired += 100 })
	s.Restore(snap)
	s.Run()
	if fired != 1 {
		t.Fatalf("fired=%d, want 1 (post-snapshot event must be dropped)", fired)
	}
}

func TestSchedulerSnapshotRevivesEventRefs(t *testing.T) {
	s := NewScheduler()
	ref := s.At(10, "ev", func() {})
	snap := s.Snapshot()
	s.Run()
	if ref.Pending() {
		t.Fatal("ref still pending after run")
	}
	s.Restore(snap)
	if !ref.Pending() || ref.At() != 10 || ref.Label() != "ev" {
		t.Fatalf("restored ref: pending=%t at=%v label=%q", ref.Pending(), ref.At(), ref.Label())
	}
	// Cancelling the revived ref must suppress the replayed event.
	s.Cancel(ref)
	s.Run()
}

func TestSchedulerRestoreForeignSnapshotPanics(t *testing.T) {
	a, b := NewScheduler(), NewScheduler()
	snap := a.Snapshot()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic restoring a foreign snapshot")
		}
	}()
	b.Restore(snap)
}

func TestRNGSnapshotRestoreReplaysStream(t *testing.T) {
	g := NewRNG(42)
	g.Float64() // advance off the seed state
	var buf [16]byte
	g.Bytes(buf[:]) // engage Read state (readVal/readPos)

	snap := g.Snapshot()
	draw := func() [6]uint64 {
		var out [6]uint64
		out[0] = g.Uint64()
		out[1] = uint64(g.Intn(1000))
		out[2] = uint64(int64(g.NormFloat64() * 1e6))
		out[3] = uint64(g.Duration(Second))
		var b [3]byte
		g.Bytes(b[:])
		out[4] = uint64(b[0])<<16 | uint64(b[1])<<8 | uint64(b[2])
		out[5] = uint64(int64(g.Float64() * 1e9))
		return out
	}
	first := draw()
	g.Restore(snap)
	if second := draw(); second != first {
		t.Fatalf("replayed draws %v != first draws %v", second, first)
	}
}

func TestRNGReseedMatchesFreshStream(t *testing.T) {
	g := NewRNG(7)
	for i := 0; i < 100; i++ {
		g.Uint64()
	}
	var buf [5]byte
	g.Bytes(buf[:]) // leave partial Read state that Reseed must clear
	g.Reseed(12345)

	fresh := NewRNG(12345)
	if g.Seed() != fresh.Seed() {
		t.Fatalf("seed=%d, want %d", g.Seed(), fresh.Seed())
	}
	for i := 0; i < 50; i++ {
		if a, b := g.Uint64(), fresh.Uint64(); a != b {
			t.Fatalf("draw %d: reseeded %d != fresh %d", i, a, b)
		}
	}
	g.Bytes(buf[:])
	var want [5]byte
	fresh.Bytes(want[:])
	if buf != want {
		t.Fatalf("reseeded Bytes %v != fresh %v", buf, want)
	}
}

func TestRNGRekeyIsOrderIndependent(t *testing.T) {
	a1, a2 := NewRNG(1), NewRNG(2)
	b1, b2 := NewRNG(1), NewRNG(2)
	a1.Rekey(99)
	a2.Rekey(99)
	b2.Rekey(99) // opposite visit order
	b1.Rekey(99)
	if a1.Seed() != b1.Seed() || a2.Seed() != b2.Seed() {
		t.Fatal("rekey result depends on visit order")
	}
	if a1.Seed() == a2.Seed() {
		t.Fatal("distinct streams rekeyed to the same seed")
	}
	if a1.Uint64() != b1.Uint64() {
		t.Fatal("rekeyed streams diverge")
	}
}

func TestClockStateIsCapturedWithScheduler(t *testing.T) {
	s := NewScheduler()
	rng := NewRNG(3)
	c := NewClock(s, rng.Child("clock"), ClockConfig{RatedPPM: 50, JitterStdDev: Microsecond})

	// Capture scheduler + clock together, as a world snapshot would.
	cap := CaptureRoots(s, c)
	fired := 0
	c.AfterLocal(Millisecond, "tick", func() { fired++ })
	s.Run()
	t1 := s.Now()

	cap.Restore()
	c.AfterLocal(Millisecond, "tick", func() { fired++ })
	s.Run()
	if s.Now() != t1 {
		t.Fatalf("replayed wakeup at %v, want %v (jitter draw must replay)", s.Now(), t1)
	}
	if fired != 2 {
		t.Fatalf("fired=%d, want 2", fired)
	}
}
