package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSchedulerRunsInTimeOrder(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.At(30*Time(Microsecond), "c", func() { got = append(got, 3) })
	s.At(10*Time(Microsecond), "a", func() { got = append(got, 1) })
	s.At(20*Time(Microsecond), "b", func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30*Time(Microsecond) {
		t.Errorf("Now = %v, want 30µs", s.Now())
	}
}

func TestSchedulerFIFOAtSameInstant(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5*Time(Microsecond), "e", func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated: got %v", got)
		}
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	s.After(Microsecond, "outer", func() {
		s.After(2*Microsecond, "inner", func() {
			fired = append(fired, s.Now())
		})
	})
	s.Run()
	if len(fired) != 1 || fired[0] != Time(3*Microsecond) {
		t.Fatalf("inner fired at %v, want 3µs", fired)
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	ran := false
	e := s.After(Microsecond, "x", func() { ran = true })
	if !e.Pending() {
		t.Fatal("event not pending after scheduling")
	}
	s.Cancel(e)
	if !e.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
	if e.Pending() {
		t.Fatal("cancelled event still pending")
	}
	s.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	// Cancelling again — and cancelling a zero ref — must be no-ops.
	s.Cancel(e)
	s.Cancel(EventRef{})
}

func TestSchedulerStaleRefIsInert(t *testing.T) {
	s := NewScheduler()
	e := s.After(Microsecond, "ran", func() {})
	s.Run()
	// The event ran: its ref is stale and every accessor is inert.
	if e.Pending() || e.Cancelled() {
		t.Fatal("stale ref not inert")
	}
	if e.At() != 0 || e.Label() != "" {
		t.Fatalf("stale ref leaked data: at=%v label=%q", e.At(), e.Label())
	}
	s.Cancel(e) // must not disturb later events
	ran := false
	f := s.After(Microsecond, "later", func() { ran = true })
	s.Cancel(e) // stale ref again, now that the struct is re-used
	s.Run()
	if !ran {
		t.Fatal("stale Cancel hit a recycled event")
	}
	_ = f
}

func TestSchedulerEventRefAccessors(t *testing.T) {
	s := NewScheduler()
	e := s.At(Time(5*Microsecond), "probe", func() {})
	if e.At() != Time(5*Microsecond) {
		t.Fatalf("At = %v", e.At())
	}
	if e.Label() != "probe" {
		t.Fatalf("Label = %q", e.Label())
	}
}

func TestSchedulerCancelOneOfMany(t *testing.T) {
	s := NewScheduler()
	var got []string
	a := s.At(Time(Microsecond), "a", func() { got = append(got, "a") })
	s.At(Time(2*Microsecond), "b", func() { got = append(got, "b") })
	c := s.At(Time(3*Microsecond), "c", func() { got = append(got, "c") })
	s.Cancel(a)
	s.Cancel(c)
	s.Run()
	if len(got) != 1 || got[0] != "b" {
		t.Fatalf("got %v, want [b]", got)
	}
}

func TestSchedulerRunUntilAdvancesClock(t *testing.T) {
	s := NewScheduler()
	s.After(10*Microsecond, "later", func() {})
	s.RunUntil(Time(5 * Microsecond))
	if s.Now() != Time(5*Microsecond) {
		t.Fatalf("Now = %v, want 5µs", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
	s.RunFor(10 * Microsecond)
	if s.Pending() != 0 {
		t.Fatal("event did not run")
	}
}

func TestSchedulerHalt(t *testing.T) {
	s := NewScheduler()
	n := 0
	for i := 1; i <= 5; i++ {
		s.At(Time(i)*Time(Microsecond), "e", func() {
			n++
			if n == 2 {
				s.Halt()
			}
		})
	}
	s.Run()
	if n != 2 {
		t.Fatalf("ran %d events after halt, want 2", n)
	}
	if !s.Halted() {
		t.Fatal("not halted")
	}
}

func TestSchedulerPanicsOnPastEvent(t *testing.T) {
	s := NewScheduler()
	s.After(10*Microsecond, "x", func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic scheduling in the past")
			}
		}()
		s.At(Time(Microsecond), "past", func() {})
	})
	s.Run()
}

func TestSchedulerNegativeAfterClamped(t *testing.T) {
	s := NewScheduler()
	ran := false
	s.After(-5*Microsecond, "neg", func() { ran = true })
	s.Run()
	if !ran {
		t.Fatal("negative-delay event dropped")
	}
}

func TestSchedulerProcessedCount(t *testing.T) {
	s := NewScheduler()
	for i := 0; i < 7; i++ {
		s.At(Time(i)*Time(Microsecond), "e", func() {})
	}
	s.Run()
	if s.Processed() != 7 {
		t.Fatalf("Processed = %d, want 7", s.Processed())
	}
}

// Property: for any set of event offsets, execution order is sorted by time.
func TestSchedulerOrderProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		s := NewScheduler()
		var seen []Time
		for _, o := range offsets {
			s.At(Time(o)*Time(Microsecond), "e", func() {
				seen = append(seen, s.Now())
			})
		}
		s.Run()
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(seen) == len(offsets)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// refModel is a naive sorted-slice reference scheduler: schedule keeps the
// slice ordered by (at, seq); run pops the head. It is the executable spec
// the 4-ary heap is tested against.
type refModel struct {
	events []refEvent
	seq    uint64
	now    Time
}

type refEvent struct {
	at        Time
	seq       uint64
	id        int
	cancelled bool
}

func (m *refModel) schedule(at Time, id int) uint64 {
	m.seq++
	e := refEvent{at: at, seq: m.seq, id: id}
	i := sort.Search(len(m.events), func(i int) bool {
		o := m.events[i]
		return o.at > e.at || (o.at == e.at && o.seq > e.seq)
	})
	m.events = append(m.events, refEvent{})
	copy(m.events[i+1:], m.events[i:])
	m.events[i] = e
	return e.seq
}

func (m *refModel) cancel(seq uint64) {
	for i := range m.events {
		if m.events[i].seq == seq {
			m.events[i].cancelled = true
		}
	}
}

func (m *refModel) run() []int {
	var order []int
	for _, e := range m.events {
		if !e.cancelled {
			m.now = e.at
			order = append(order, e.id)
		}
	}
	m.events = nil
	return order
}

// TestSchedulerMatchesReferenceModel drives the 4-ary heap scheduler and
// the sorted-slice reference through the same randomized sequence of
// schedule / cancel / re-schedule operations and requires identical
// execution order — the property that keeps RNG draw order, and therefore
// every experiment table, byte-identical across scheduler rewrites.
func TestSchedulerMatchesReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 200; round++ {
		s := NewScheduler()
		ref := &refModel{}
		var got []int
		type handle struct {
			ref EventRef
			seq uint64
		}
		var handles []handle
		n := 1 + rng.Intn(60)
		for op := 0; op < n; op++ {
			switch {
			case len(handles) > 0 && rng.Intn(4) == 0:
				// Cancel a random earlier event (possibly twice).
				h := handles[rng.Intn(len(handles))]
				s.Cancel(h.ref)
				ref.cancel(h.seq)
			default:
				id := op
				at := Time(rng.Intn(50)) * Time(Microsecond)
				ev := s.At(at, "e", func() { got = append(got, id) })
				seq := ref.schedule(at, id)
				handles = append(handles, handle{ev, seq})
				if rng.Intn(8) == 0 {
					// Immediately cancel and re-schedule at a new time:
					// the recycled struct must not resurrect the old ref.
					s.Cancel(ev)
					ref.cancel(seq)
					at2 := Time(rng.Intn(50)) * Time(Microsecond)
					ev2 := s.At(at2, "r", func() { got = append(got, -id) })
					seq2 := ref.schedule(at2, -id)
					handles = append(handles, handle{ev2, seq2})
				}
			}
		}
		s.Run()
		want := ref.run()
		if len(got) != len(want) {
			t.Fatalf("round %d: ran %d events, want %d\ngot %v\nwant %v",
				round, len(got), len(want), got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d: order mismatch at %d\ngot %v\nwant %v", round, i, got, want)
			}
		}
		if s.now != ref.now && len(want) > 0 {
			t.Fatalf("round %d: clock %v, want %v", round, s.now, ref.now)
		}
	}
}

// TestSchedulerFreeListReuse checks that events are recycled through the
// free list and that recycling invalidates old refs.
func TestSchedulerFreeListReuse(t *testing.T) {
	s := NewScheduler()
	for i := 0; i < 3; i++ {
		s.After(Microsecond, "warm", func() {})
	}
	s.Run()
	allocs := testing.AllocsPerRun(100, func() {
		s.After(Microsecond, "steady", func() {})
		s.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state At+Step allocates %v per run, want 0", allocs)
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0).Add(Milliseconds(2))
	if t0.Microseconds() != 2000 {
		t.Errorf("Microseconds = %d", t0.Microseconds())
	}
	if d := t0.Sub(Time(Microsecond)); d != Duration(1999*Microsecond) {
		t.Errorf("Sub = %v", d)
	}
	if !Time(1).Before(Time(2)) || !Time(2).After(Time(1)) {
		t.Error("Before/After broken")
	}
	if s := Time(1234567 * int64(Microsecond)).String(); s != "1.234567s" {
		t.Errorf("String = %q", s)
	}
	if s := Microseconds(150).String(); s != "150µs" {
		t.Errorf("Duration.String = %q", s)
	}
	if s := Duration(1500).String(); s != "1.500µs" {
		t.Errorf("Duration.String sub-µs = %q", s)
	}
}
