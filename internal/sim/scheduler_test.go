package sim

import (
	"testing"
	"testing/quick"
)

func TestSchedulerRunsInTimeOrder(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.At(30*Time(Microsecond), "c", func() { got = append(got, 3) })
	s.At(10*Time(Microsecond), "a", func() { got = append(got, 1) })
	s.At(20*Time(Microsecond), "b", func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30*Time(Microsecond) {
		t.Errorf("Now = %v, want 30µs", s.Now())
	}
}

func TestSchedulerFIFOAtSameInstant(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5*Time(Microsecond), "e", func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated: got %v", got)
		}
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	s.After(Microsecond, "outer", func() {
		s.After(2*Microsecond, "inner", func() {
			fired = append(fired, s.Now())
		})
	})
	s.Run()
	if len(fired) != 1 || fired[0] != Time(3*Microsecond) {
		t.Fatalf("inner fired at %v, want 3µs", fired)
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	ran := false
	e := s.After(Microsecond, "x", func() { ran = true })
	s.Cancel(e)
	s.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if !e.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
	// Cancelling again must be a no-op.
	s.Cancel(e)
	s.Cancel(nil)
}

func TestSchedulerCancelOneOfMany(t *testing.T) {
	s := NewScheduler()
	var got []string
	a := s.At(Time(Microsecond), "a", func() { got = append(got, "a") })
	s.At(Time(2*Microsecond), "b", func() { got = append(got, "b") })
	c := s.At(Time(3*Microsecond), "c", func() { got = append(got, "c") })
	s.Cancel(a)
	s.Cancel(c)
	s.Run()
	if len(got) != 1 || got[0] != "b" {
		t.Fatalf("got %v, want [b]", got)
	}
}

func TestSchedulerRunUntilAdvancesClock(t *testing.T) {
	s := NewScheduler()
	s.After(10*Microsecond, "later", func() {})
	s.RunUntil(Time(5 * Microsecond))
	if s.Now() != Time(5*Microsecond) {
		t.Fatalf("Now = %v, want 5µs", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
	s.RunFor(10 * Microsecond)
	if s.Pending() != 0 {
		t.Fatal("event did not run")
	}
}

func TestSchedulerHalt(t *testing.T) {
	s := NewScheduler()
	n := 0
	for i := 1; i <= 5; i++ {
		s.At(Time(i)*Time(Microsecond), "e", func() {
			n++
			if n == 2 {
				s.Halt()
			}
		})
	}
	s.Run()
	if n != 2 {
		t.Fatalf("ran %d events after halt, want 2", n)
	}
	if !s.Halted() {
		t.Fatal("not halted")
	}
}

func TestSchedulerPanicsOnPastEvent(t *testing.T) {
	s := NewScheduler()
	s.After(10*Microsecond, "x", func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic scheduling in the past")
			}
		}()
		s.At(Time(Microsecond), "past", func() {})
	})
	s.Run()
}

func TestSchedulerNegativeAfterClamped(t *testing.T) {
	s := NewScheduler()
	ran := false
	s.After(-5*Microsecond, "neg", func() { ran = true })
	s.Run()
	if !ran {
		t.Fatal("negative-delay event dropped")
	}
}

func TestSchedulerProcessedCount(t *testing.T) {
	s := NewScheduler()
	for i := 0; i < 7; i++ {
		s.At(Time(i)*Time(Microsecond), "e", func() {})
	}
	s.Run()
	if s.Processed() != 7 {
		t.Fatalf("Processed = %d, want 7", s.Processed())
	}
}

// Property: for any set of event offsets, execution order is sorted by time.
func TestSchedulerOrderProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		s := NewScheduler()
		var seen []Time
		for _, o := range offsets {
			s.At(Time(o)*Time(Microsecond), "e", func() {
				seen = append(seen, s.Now())
			})
		}
		s.Run()
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(seen) == len(offsets)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0).Add(Milliseconds(2))
	if t0.Microseconds() != 2000 {
		t.Errorf("Microseconds = %d", t0.Microseconds())
	}
	if d := t0.Sub(Time(Microsecond)); d != Duration(1999*Microsecond) {
		t.Errorf("Sub = %v", d)
	}
	if !Time(1).Before(Time(2)) || !Time(2).After(Time(1)) {
		t.Error("Before/After broken")
	}
	if s := Time(1234567 * int64(Microsecond)).String(); s != "1.234567s" {
		t.Errorf("String = %q", s)
	}
	if s := Microseconds(150).String(); s != "150µs" {
		t.Errorf("Duration.String = %q", s)
	}
	if s := Duration(1500).String(); s != "1.500µs" {
		t.Errorf("Duration.String sub-µs = %q", s)
	}
}
