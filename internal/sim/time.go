// Package sim implements the discrete-event simulation kernel underneath the
// BLE radio simulator: virtual time, an event scheduler, per-device drifting
// sleep clocks and deterministic random-number streams.
//
// All of the protocol and attack code in this repository is written against
// this kernel, which makes every run fully deterministic for a given seed
// while still modelling the microsecond-scale clock inaccuracies that the
// InjectaBLE attack exploits.
package sim

import (
	"fmt"
	"time"
)

// Time is an instant in virtual simulation time, measured in nanoseconds
// since the start of the run. BLE Link Layer timing is specified in
// microseconds, but clock-drift computations need sub-microsecond
// resolution, hence nanoseconds.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Never is a sentinel representing "no deadline".
const Never Time = 1<<63 - 1

// Microseconds converts a whole number of microseconds into a Duration.
func Microseconds(us int64) Duration { return Duration(us) * Microsecond }

// Milliseconds converts a whole number of milliseconds into a Duration.
func Milliseconds(ms int64) Duration { return Duration(ms) * Millisecond }

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the span between t and u (t - u).
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// Microseconds returns t expressed in whole microseconds, truncating.
func (t Time) Microseconds() int64 { return int64(t) / int64(Microsecond) }

// Std converts t to a time.Duration offset from the simulation epoch,
// for interoperability with the standard library.
func (t Time) Std() time.Duration { return time.Duration(t) }

// String renders the instant as seconds with microsecond precision,
// e.g. "1.234567s".
func (t Time) String() string {
	us := int64(t) / int64(Microsecond)
	return fmt.Sprintf("%d.%06ds", us/1e6, us%1e6)
}

// Microseconds returns d expressed in whole microseconds, truncating.
func (d Duration) Microseconds() int64 { return int64(d) / int64(Microsecond) }

// Seconds returns d as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Std converts d to a standard library time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// String renders the duration in the most readable unit: "1.500µs",
// "150µs", "45ms", "2.5s".
func (d Duration) String() string {
	abs := d
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= Second:
		return fmt.Sprintf("%gs", float64(d)/float64(Second))
	case abs >= Millisecond && d%Millisecond == 0:
		return fmt.Sprintf("%dms", int64(d)/int64(Millisecond))
	case abs >= 10*Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	case d%Microsecond == 0:
		return fmt.Sprintf("%dµs", int64(d)/int64(Microsecond))
	default:
		return fmt.Sprintf("%.3fµs", float64(d)/float64(Microsecond))
	}
}
