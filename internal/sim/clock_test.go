package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func pinned(ppm float64) ClockConfig {
	return ClockConfig{RatedPPM: math.Abs(ppm), ActualPPM: &ppm}
}

func TestClockFastClockWakesEarly(t *testing.T) {
	s := NewScheduler()
	rng := NewRNG(1)
	// +100 ppm: the device's clock runs fast, so a 1 s local sleep spans
	// slightly less than 1 s of true time.
	c := NewClock(s, rng, pinned(100))
	var woke Time
	c.AfterLocal(Second, "wake", func() { woke = s.Now() })
	s.Run()
	sec := float64(Second)
	want := Duration(sec / (1 + 100e-6))
	if got := woke.Sub(Time(0)); got != want {
		t.Fatalf("woke after %v, want %v", got, want)
	}
	if woke >= Time(Second) {
		t.Fatal("fast clock woke late")
	}
}

func TestClockSlowClockWakesLate(t *testing.T) {
	s := NewScheduler()
	c := NewClock(s, NewRNG(1), pinned(-100))
	var woke Time
	c.AfterLocal(Second, "wake", func() { woke = s.Now() })
	s.Run()
	if woke <= Time(Second) {
		t.Fatalf("slow clock woke at %v, want later than 1s", woke)
	}
}

func TestClockDriftOver(t *testing.T) {
	s := NewScheduler()
	c := NewClock(s, NewRNG(1), pinned(50))
	got := c.DriftOver(Second)
	if want := Duration(50 * float64(Microsecond)); got != want {
		t.Fatalf("DriftOver(1s) = %v, want %v", got, want)
	}
}

func TestClockActualWithinRating(t *testing.T) {
	s := NewScheduler()
	for seed := uint64(0); seed < 50; seed++ {
		c := NewClock(s, NewRNG(seed), ClockConfig{RatedPPM: 50})
		if a := c.ActualPPM(); math.Abs(a) > 50 {
			t.Fatalf("seed %d: actual %f ppm outside rating", seed, a)
		}
		if c.RatedPPM() != 50 {
			t.Fatalf("rating = %f", c.RatedPPM())
		}
	}
}

func TestClockJitterStatistics(t *testing.T) {
	s := NewScheduler()
	c := NewClock(s, NewRNG(7), ClockConfig{RatedPPM: 20, JitterStdDev: 4 * Microsecond})
	n := 2000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		j := float64(c.SampleJitter())
		sum += j
		sumSq += j * j
	}
	mean := sum / float64(n)
	std := math.Sqrt(sumSq/float64(n) - mean*mean)
	if math.Abs(mean) > float64(Microsecond) {
		t.Errorf("jitter mean %.0f ns, want ≈0", mean)
	}
	if math.Abs(std-float64(4*Microsecond)) > float64(Microsecond) {
		t.Errorf("jitter std %.0f ns, want ≈4µs", std)
	}
}

func TestClockNoJitterConfigured(t *testing.T) {
	s := NewScheduler()
	c := NewClock(s, NewRNG(1), pinned(0))
	for i := 0; i < 10; i++ {
		if c.SampleJitter() != 0 {
			t.Fatal("jitter without configuration")
		}
	}
}

func TestClockAtLocalOffsetClampsToNow(t *testing.T) {
	s := NewScheduler()
	c := NewClock(s, NewRNG(1), pinned(0))
	s.After(10*Microsecond, "advance", func() {
		ran := false
		// Base in the past with zero offset: must clamp to now, not panic.
		c.AtLocalOffset(Time(0), 0, "clamped", func() { ran = true })
		s.Run()
		if !ran {
			t.Error("clamped event did not run")
		}
	})
	s.Run()
}

// Property: round-tripping drift is consistent — sleeping local d on a clock
// with ppm error spans true time d/(1+ppm·1e-6) within 1 ns of rounding.
func TestClockScaleProperty(t *testing.T) {
	f := func(rawPPM int16, rawUS uint32) bool {
		ppm := float64(rawPPM % 500)
		d := Duration(rawUS) * Microsecond
		s := NewScheduler()
		c := NewClock(s, NewRNG(1), pinned(ppm))
		got := c.TrueAfter(d)
		want := float64(d) / (1 + ppm*1e-6)
		return math.Abs(float64(got)-want) <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
