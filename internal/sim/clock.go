package sim

// Clock models a device-local sleep clock with a frequency error expressed
// in parts per million, plus optional white timing jitter on wakeups.
//
// BLE devices time their connection events with a low-power "sleep clock"
// whose accuracy is rated in ppm (the SCA field of CONNECT_REQ encodes the
// master's rating). The spec's window-widening formula exists to compensate
// the relative drift between the master's and slave's sleep clocks; that
// widened window is exactly what InjectaBLE races into, so the drift model
// here is load-bearing for the whole reproduction.
//
// The clock converts between "true" scheduler time and "local" device time:
//
//	local  = true  × (1 + ppm·10⁻⁶)
//	true   = local / (1 + ppm·10⁻⁶)
//
// A device that sleeps for a local duration d wakes after a true duration
// d/(1+ppm·10⁻⁶), plus a jitter sample modelling activity-start latency.
type Clock struct {
	sched *Scheduler
	// ppm is the actual frequency error of this clock. Positive means the
	// clock runs fast (local time advances faster than true time).
	ppm float64
	// ratedPPM is the accuracy the device *claims* (worst case |ppm|).
	// This is what ends up in the SCA field on air.
	ratedPPM float64
	// jitter is the standard deviation of white wakeup jitter.
	jitter Duration
	rng    *RNG
}

// ClockConfig configures a device clock.
type ClockConfig struct {
	// RatedPPM is the advertised sleep-clock accuracy (e.g. 50 for a
	// 50 ppm crystal). The actual error is drawn uniformly in
	// [-RatedPPM, +RatedPPM] unless ActualPPM is non-nil.
	RatedPPM float64
	// ActualPPM pins the actual frequency error instead of drawing it.
	ActualPPM *float64
	// JitterStdDev is the standard deviation of white wakeup jitter
	// (scheduling latency, radio ramp-up variation, ...).
	JitterStdDev Duration
}

// NewClock builds a clock attached to the scheduler, drawing its actual
// frequency error from rng when not pinned. Crystal tolerance is modelled
// as a clipped normal well inside the rating: a part rarely sits at its
// datasheet limit, and the spec's window-widening allowance assumes it
// does — that residual margin is what lets a slave re-acquire its master
// after timing disturbances.
func NewClock(sched *Scheduler, rng *RNG, cfg ClockConfig) *Clock {
	ppm := rng.NormFloat64() * cfg.RatedPPM / 2.5
	if ppm > cfg.RatedPPM {
		ppm = cfg.RatedPPM
	}
	if ppm < -cfg.RatedPPM {
		ppm = -cfg.RatedPPM
	}
	if cfg.ActualPPM != nil {
		ppm = *cfg.ActualPPM
	}
	return &Clock{
		sched:    sched,
		ppm:      ppm,
		ratedPPM: cfg.RatedPPM,
		jitter:   cfg.JitterStdDev,
		rng:      rng,
	}
}

// RatedPPM returns the accuracy rating this device advertises.
func (c *Clock) RatedPPM() float64 { return c.ratedPPM }

// ActualPPM returns the true frequency error of the clock.
func (c *Clock) ActualPPM() float64 { return c.ppm }

// scale converts a local duration to the true duration it spans.
func (c *Clock) scale(d Duration) Duration {
	return Duration(float64(d) / (1 + c.ppm*1e-6))
}

// TrueAfter returns the true-time duration corresponding to the device
// sleeping for local duration d, without jitter.
func (c *Clock) TrueAfter(d Duration) Duration { return c.scale(d) }

// SampleJitter draws one wakeup-jitter sample (may be negative).
func (c *Clock) SampleJitter() Duration {
	if c.jitter == 0 {
		return 0
	}
	return Duration(c.rng.NormFloat64() * float64(c.jitter))
}

// AfterLocal schedules fn after a local-clock duration d, applying drift
// and one jitter sample. It returns the event so callers can cancel it.
func (c *Clock) AfterLocal(d Duration, label string, fn func()) EventRef {
	td := c.scale(d) + c.SampleJitter()
	if td < 0 {
		td = 0
	}
	return c.sched.After(td, label, fn)
}

// AtLocalOffset schedules fn at base + local duration d (drift applied to d
// only), with one jitter sample. base is a true-time instant the device
// observed directly (e.g. a received frame's start), so it carries no drift.
func (c *Clock) AtLocalOffset(base Time, d Duration, label string, fn func()) EventRef {
	t := base.Add(c.scale(d) + c.SampleJitter())
	if t < c.sched.Now() {
		t = c.sched.Now()
	}
	return c.sched.At(t, label, fn)
}

// DriftOver returns the absolute drift, in true time, that this clock
// accumulates over a true-time span d. Used in tests and the sensitivity
// harness to reason about window widening.
func (c *Clock) DriftOver(d Duration) Duration {
	return Duration(float64(d) * c.ppm * 1e-6)
}
