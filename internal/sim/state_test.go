package sim

import (
	"reflect"
	"testing"
)

// The engine test types live in this package, so they are module-managed.

type stateLeaf struct {
	n    int
	name string
}

type stateNode struct {
	value   int
	leaf    *stateLeaf
	peers   []*stateLeaf
	scores  map[string]int
	buf     []byte
	self    *stateNode // cycle
	labels  [2]string
	cb      func() int
	tracker any
}

func TestCaptureRestoreStruct(t *testing.T) {
	leaf := &stateLeaf{n: 1, name: "a"}
	n := &stateNode{value: 10, leaf: leaf}
	n.self = n
	cap := CaptureRoots(n)

	n.value = 99
	leaf.n = 77
	n.leaf = &stateLeaf{n: 5}
	cap.Restore()

	if n.value != 10 || n.leaf != leaf || leaf.n != 1 {
		t.Fatalf("restore: value=%d leaf=%p n=%d", n.value, n.leaf, leaf.n)
	}
}

func TestCaptureRestoreSliceRegion(t *testing.T) {
	n := &stateNode{buf: make([]byte, 3, 8)}
	copy(n.buf, []byte{1, 2, 3})
	cap := CaptureRoots(n)

	// Mutate in place, append within capacity, then reslice.
	n.buf[0] = 9
	n.buf = append(n.buf, 4, 5)
	cap.Restore()

	if len(n.buf) != 3 || n.buf[0] != 1 || n.buf[1] != 2 || n.buf[2] != 3 {
		t.Fatalf("restore: buf=%v", n.buf)
	}
	// The capacity region is restored too: re-appending reproduces the
	// original bytes deterministically only if the caller rewrites them,
	// but the header must be back to len 3.
	if cap.Objects() == 0 {
		t.Fatal("expected captured objects")
	}
}

func TestCaptureRestorePointerSlice(t *testing.T) {
	a, b := &stateLeaf{n: 1}, &stateLeaf{n: 2}
	n := &stateNode{peers: []*stateLeaf{a, b}}
	cap := CaptureRoots(n)

	a.n = 100
	n.peers = append(n.peers[:1], &stateLeaf{n: 3})
	cap.Restore()

	if len(n.peers) != 2 || n.peers[0] != a || n.peers[1] != b {
		t.Fatalf("restore: peers=%v", n.peers)
	}
	if a.n != 1 || b.n != 2 {
		t.Fatalf("restore: a.n=%d b.n=%d", a.n, b.n)
	}
}

func TestCaptureRestoreMap(t *testing.T) {
	n := &stateNode{scores: map[string]int{"x": 1, "y": 2}}
	m := n.scores
	cap := CaptureRoots(n)

	n.scores["x"] = 50
	n.scores["z"] = 3
	delete(n.scores, "y")
	cap.Restore()

	if !reflect.DeepEqual(n.scores, map[string]int{"x": 1, "y": 2}) {
		t.Fatalf("restore: scores=%v", n.scores)
	}
	// The same map object was restored in place, not replaced.
	m["w"] = 9
	if n.scores["w"] != 9 {
		t.Fatal("map object identity lost on restore")
	}
}

func TestCaptureRestoreFuncField(t *testing.T) {
	calls := &stateLeaf{}
	n := &stateNode{}
	n.cb = func() int { calls.n++; return calls.n }
	// calls is reachable only through the closure, which the engine does
	// not traverse — register it as its own root, the pattern snapshot-
	// compatible code uses.
	cap := CaptureRoots(n, calls)

	n.cb()
	n.cb()
	orig := n.cb
	n.cb = func() int { return -1 }
	cap.Restore()

	if calls.n != 0 {
		t.Fatalf("restore: closure state n=%d, want 0", calls.n)
	}
	if reflect.ValueOf(n.cb).Pointer() != reflect.ValueOf(orig).Pointer() {
		t.Fatal("func field not restored to the original closure")
	}
	if got := n.cb(); got != 1 {
		t.Fatalf("restored closure call = %d, want 1", got)
	}
}

func TestCaptureRestoreInterfaceField(t *testing.T) {
	inner := &stateLeaf{n: 4}
	n := &stateNode{tracker: inner}
	cap := CaptureRoots(n)

	inner.n = 40
	n.tracker = "replaced"
	cap.Restore()

	if n.tracker != any(inner) || inner.n != 4 {
		t.Fatalf("restore: tracker=%v inner.n=%d", n.tracker, inner.n)
	}
}

func TestRestoreIsRepeatable(t *testing.T) {
	n := &stateNode{value: 1, scores: map[string]int{"a": 1}}
	cap := CaptureRoots(n)
	for i := 0; i < 3; i++ {
		n.value = 100 + i
		n.scores["b"] = i
		cap.Restore()
		if n.value != 1 || len(n.scores) != 1 || n.scores["a"] != 1 {
			t.Fatalf("restore %d: value=%d scores=%v", i, n.value, n.scores)
		}
	}
}

func TestVisitRNGs(t *testing.T) {
	type holder struct {
		g     *RNG
		child *RNG
		bag   map[string]*RNG
	}
	h := &holder{g: NewRNG(1)}
	h.child = h.g.Child("c")
	h.bag = map[string]*RNG{"m": h.g.Child("m")}
	seen := map[*RNG]bool{}
	VisitRNGs(func(g *RNG) { seen[g] = true }, h)
	if len(seen) != 3 || !seen[h.g] || !seen[h.child] || !seen[h.bag["m"]] {
		t.Fatalf("visited %d RNGs, want 3", len(seen))
	}
}
