package sim

// Arena recycles simulation-kernel memory across consecutive short-lived
// worlds, so a campaign running thousands of trials on one worker stops
// paying per-trial allocation and GC for scheduler events, the event heap
// and radio-frame scratch buffers.
//
// An arena backs at most one live world at a time: calling NewScheduler
// reclaims everything handed out for the previous scheduler (its queued
// event structs, its heap backing array and the byte arena's chunks), so
// the caller must be completely done with the previous world — including
// anything that aliases arena-backed memory, such as received frame PDUs —
// before building the next one. The campaign runner keeps one arena per
// worker, which satisfies this by construction: a worker finishes trial N
// before starting trial N+1.
//
// Arenas are not safe for concurrent use. Reuse never changes observable
// behaviour: recycled buffers are fully reinitialised before handing out,
// and no RNG state lives in the arena.
type Arena struct {
	prev  *Scheduler
	bytes ByteArena
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// NewScheduler returns a fresh scheduler backed by the arena, first
// reclaiming the previous scheduler's memory (queued events, free list and
// heap backing) and resetting the byte arena. The previously returned
// scheduler and anything holding arena-backed memory must no longer be in
// use.
func (a *Arena) NewScheduler() *Scheduler {
	s := NewScheduler()
	if p := a.prev; p != nil {
		// Every event still queued in the dead scheduler joins the new
		// free list; recycle drops their callbacks so retained closures
		// are released.
		free := p.free
		for _, e := range p.heap {
			e.gen++
			e.fn = nil
			e.label = ""
			e.cancel = false
			e.next = free
			free = e
		}
		s.free = free
		s.heap = p.heap[:0]
		p.heap = nil
		p.free = nil
	}
	a.bytes.Reset()
	a.prev = s
	return s
}

// Bytes returns the arena's byte allocator (reset on every NewScheduler).
func (a *Arena) Bytes() *ByteArena { return &a.bytes }

// byteArenaChunk is the allocation granularity of a ByteArena. Frame PDUs
// are tens of bytes, so one chunk amortises thousands of clones.
const byteArenaChunk = 64 << 10

// ByteArena is a bump allocator for short-lived byte buffers (radio-frame
// PDU clones). Alloc never zeroes and never frees individually; Reset
// retires every allocation at once while keeping the chunks for reuse. The
// zero value is ready to use.
type ByteArena struct {
	cur    []byte   // active chunk; len = bytes used
	spare  [][]byte // retired chunks kept across Reset for reuse
	filled [][]byte // chunks filled since the last Reset
}

// NewByteArena returns an empty byte arena.
func NewByteArena() *ByteArena { return &ByteArena{} }

// Alloc returns an uninitialised n-byte slice carved from the arena. The
// slice is valid until Reset. Requests larger than the chunk size get a
// dedicated allocation.
func (a *ByteArena) Alloc(n int) []byte {
	if n > byteArenaChunk {
		return make([]byte, n)
	}
	if cap(a.cur)-len(a.cur) < n {
		if a.cur != nil {
			a.filled = append(a.filled, a.cur)
		}
		if k := len(a.spare); k > 0 {
			a.cur = a.spare[k-1][:0]
			a.spare[k-1] = nil
			a.spare = a.spare[:k-1]
		} else {
			a.cur = make([]byte, 0, byteArenaChunk)
		}
	}
	off := len(a.cur)
	a.cur = a.cur[:off+n]
	return a.cur[off : off+n : off+n]
}

// Copy clones b into the arena.
func (a *ByteArena) Copy(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	c := a.Alloc(len(b))
	copy(c, b)
	return c
}

// Reset retires every allocation, keeping chunk memory for reuse. All
// slices previously returned by Alloc/Copy become invalid.
func (a *ByteArena) Reset() {
	for i, c := range a.filled {
		a.spare = append(a.spare, c[:0])
		a.filled[i] = nil
	}
	a.filled = a.filled[:0]
	if a.cur != nil {
		a.cur = a.cur[:0]
	}
}
