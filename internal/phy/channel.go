package phy

import "fmt"

// Channel is a BLE RF channel index (0–39).
//
// Channels 0–36 are data channels used in connected mode; 37, 38 and 39 are
// the advertising channels. Note that channel *indices* do not map linearly
// onto frequencies: the advertising channels are spread across the band
// (2402, 2426 and 2480 MHz) to dodge Wi-Fi.
type Channel uint8

// The advertising channels.
const (
	AdvChannel37 Channel = 37
	AdvChannel38 Channel = 38
	AdvChannel39 Channel = 39
)

// NumChannels is the total channel count; NumDataChannels counts channels
// usable in connected mode.
const (
	NumChannels     = 40
	NumDataChannels = 37
)

// AdvChannels lists the three advertising channels in scan order.
func AdvChannels() [3]Channel { return [3]Channel{37, 38, 39} }

// Valid reports whether c is one of the 40 defined channels.
func (c Channel) Valid() bool { return c < NumChannels }

// IsAdvertising reports whether c is an advertising channel.
func (c Channel) IsAdvertising() bool { return c >= 37 && c <= 39 }

// IsData reports whether c is a data channel.
func (c Channel) IsData() bool { return c <= 36 }

// FrequencyMHz returns the channel's centre frequency in MHz per the
// Core Specification band plan.
func (c Channel) FrequencyMHz() int {
	switch {
	case c == 37:
		return 2402
	case c == 38:
		return 2426
	case c == 39:
		return 2480
	case c <= 10:
		return 2404 + 2*int(c)
	case c <= 36:
		return 2428 + 2*int(c-11)
	default:
		return 0
	}
}

// String implements fmt.Stringer.
func (c Channel) String() string {
	kind := "data"
	if c.IsAdvertising() {
		kind = "adv"
	}
	return fmt.Sprintf("ch%d(%s,%dMHz)", uint8(c), kind, c.FrequencyMHz())
}

// WhiteningInit returns the initial value of the 7-bit data-whitening LFSR
// for this channel: bit 6 set to 1, bits 5..0 = channel index.
func (c Channel) WhiteningInit() byte {
	return 0x40 | (byte(c) & 0x3F)
}
