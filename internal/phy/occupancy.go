package phy

import (
	"fmt"

	"injectable/internal/obs"
	"injectable/internal/sim"
)

// Occupancy aggregates per-channel band occupancy — microseconds of
// airtime on each of the 40 BLE channels — into an obs.Registry. The
// medium feeds it one observation per transmission; counters are
// pre-registered here so the per-transmission path never allocates.
// A nil *Occupancy is a no-op.
type Occupancy struct {
	total *obs.Counter
	noise *obs.Counter
	busy  [NumChannels]*obs.Counter
}

// NewOccupancy registers the occupancy counters in r.
func NewOccupancy(r *obs.Registry) *Occupancy {
	if r == nil {
		return nil
	}
	o := &Occupancy{
		total: r.Counter("phy.airtime_us"),
		noise: r.Counter("phy.noise_airtime_us"),
	}
	for ch := range o.busy {
		o.busy[ch] = r.Counter(fmt.Sprintf("phy.ch.%02d.busy_us", ch))
	}
	return o
}

// Observe accounts one transmission of duration d on channel ch.
func (o *Occupancy) Observe(ch Channel, d sim.Duration, noise bool) {
	if o == nil {
		return
	}
	us := d.Microseconds()
	o.total.Add(us)
	if noise {
		o.noise.Add(us)
	}
	if ch.Valid() {
		o.busy[ch].Add(us)
	}
}
