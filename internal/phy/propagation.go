package phy

import (
	"fmt"
	"math"
)

// DBm is a signal power level in dBm.
type DBm float64

// Milliwatts converts p to linear milliwatts.
func (p DBm) Milliwatts() float64 { return math.Pow(10, float64(p)/10) }

// FromMilliwatts converts linear milliwatts to dBm.
func FromMilliwatts(mw float64) DBm {
	if mw <= 0 {
		return DBm(math.Inf(-1))
	}
	return DBm(10 * math.Log10(mw))
}

// String implements fmt.Stringer.
func (p DBm) String() string { return fmt.Sprintf("%.1fdBm", float64(p)) }

// Default radio characteristics for simulated BLE chips, matching typical
// nRF52-class hardware (the paper's attack dongle is an nRF52840).
const (
	// DefaultTxPower is the default transmit power.
	DefaultTxPower DBm = 0
	// DefaultSensitivity is the weakest signal a receiver can lock onto.
	DefaultSensitivity DBm = -90
	// NoiseFloor is the ambient in-band noise power.
	NoiseFloor DBm = -100
)

// Position is a point in a 2-D floor plan, in metres. The paper's
// experimental setups (equilateral triangle with 2 m edges; attacker moved
// 1–10 m away; wall experiments) are expressed as positions.
type Position struct {
	X, Y float64
}

// Distance returns the Euclidean distance to other, in metres.
func (p Position) Distance(other Position) float64 {
	dx, dy := p.X-other.X, p.Y-other.Y
	return math.Hypot(dx, dy)
}

// String implements fmt.Stringer.
func (p Position) String() string { return fmt.Sprintf("(%.2f,%.2f)m", p.X, p.Y) }

// Wall is a straight obstacle segment with a fixed penetration loss.
// A typical interior plasterboard/brick wall attenuates 2.4 GHz by 3–10 dB.
type Wall struct {
	A, B Position
	Loss DBm
}

// DefaultWallLoss is a typical interior-wall penetration loss at 2.4 GHz.
const DefaultWallLoss DBm = 7

// Blocks reports whether the segment from p to q crosses the wall.
func (w Wall) Blocks(p, q Position) bool {
	return segmentsIntersect(p, q, w.A, w.B)
}

// segmentsIntersect reports proper or touching intersection of segments
// p1p2 and p3p4 using orientation tests.
func segmentsIntersect(p1, p2, p3, p4 Position) bool {
	d1 := cross(p3, p4, p1)
	d2 := cross(p3, p4, p2)
	d3 := cross(p1, p2, p3)
	d4 := cross(p1, p2, p4)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	switch {
	case d1 == 0 && onSegment(p3, p4, p1):
		return true
	case d2 == 0 && onSegment(p3, p4, p2):
		return true
	case d3 == 0 && onSegment(p1, p2, p3):
		return true
	case d4 == 0 && onSegment(p1, p2, p4):
		return true
	}
	return false
}

func cross(a, b, c Position) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

func onSegment(a, b, c Position) bool {
	return math.Min(a.X, b.X) <= c.X && c.X <= math.Max(a.X, b.X) &&
		math.Min(a.Y, b.Y) <= c.Y && c.Y <= math.Max(a.Y, b.Y)
}

// PathLossModel computes propagation loss between two positions on a
// given channel.
type PathLossModel interface {
	// Loss returns the (positive) attenuation in dB from tx to rx.
	Loss(tx, rx Position, ch Channel) DBm
}

// LogDistance is the classic log-distance path-loss model with free-space
// reference loss at 1 m and optional walls:
//
//	PL(d) = PL₀(f) + 10·n·log₁₀(d/1m) + Σ wall losses
//
// where PL₀(2.44 GHz) ≈ 40.2 dB and n is the path-loss exponent (2 in free
// space, 2–3 indoors).
type LogDistance struct {
	// Exponent is the path-loss exponent n. Zero means 2.0.
	Exponent float64
	// Walls lists obstacle segments crossed lines pay Loss for.
	Walls []Wall
	// MinDistance clamps very small distances (near-field). Zero means 0.1 m.
	MinDistance float64
}

var _ PathLossModel = (*LogDistance)(nil)

// Loss implements PathLossModel.
func (m *LogDistance) Loss(tx, rx Position, ch Channel) DBm {
	n := m.Exponent
	if n == 0 {
		n = 2.0
	}
	minD := m.MinDistance
	if minD == 0 {
		minD = 0.1
	}
	d := tx.Distance(rx)
	if d < minD {
		d = minD
	}
	f := float64(ch.FrequencyMHz())
	// Free-space loss at 1 m: 20·log₁₀(f MHz) − 27.55.
	pl0 := 20*math.Log10(f) - 27.55
	loss := pl0 + 10*n*math.Log10(d)
	for _, w := range m.Walls {
		if w.Blocks(tx, rx) {
			loss += float64(w.Loss)
		}
	}
	return DBm(loss)
}

// ReceivedPower returns the RSSI at rx for a transmission at txPower from tx.
func ReceivedPower(m PathLossModel, txPower DBm, tx, rx Position, ch Channel) DBm {
	return txPower - m.Loss(tx, rx, ch)
}

// PropagationDelay returns the speed-of-light delay over d metres. At BLE
// scales (≤ tens of metres) this is tens of nanoseconds — negligible against
// microsecond protocol timing, but modelled for completeness.
func PropagationDelay(d float64) float64 { // seconds
	const c = 299792458.0
	return d / c
}
