// Package phy models the Bluetooth Low Energy physical layer: PHY modes and
// their on-air timing, the 40-channel 2.4 GHz band plan, transmit power and
// receiver sensitivity, and radio propagation (path loss, obstacles).
//
// The InjectaBLE attack is decided at this layer — whether the injected
// frame's preamble arrives inside the slave's widened receive window before
// the legitimate master's frame, and whether the tail collision corrupts it —
// so the timing and power arithmetic here is bit-for-bit aligned with the
// Bluetooth Core Specification's LE 1M/2M/Coded figures.
package phy

import (
	"fmt"

	"injectable/internal/sim"
)

// Mode identifies a BLE physical layer.
type Mode int

// The PHY modes defined by the Bluetooth Core Specification 5.x.
const (
	// LE1M is the mandatory 1 Mbit/s uncoded PHY (BLE 4.x default).
	LE1M Mode = iota + 1
	// LE2M is the optional 2 Mbit/s uncoded PHY.
	LE2M
	// LECoded125K is the long-range coded PHY at S=8 (125 kbit/s).
	LECoded125K
	// LECoded500K is the long-range coded PHY at S=2 (500 kbit/s).
	LECoded500K
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case LE1M:
		return "LE 1M"
	case LE2M:
		return "LE 2M"
	case LECoded125K:
		return "LE Coded S=8"
	case LECoded500K:
		return "LE Coded S=2"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// BitDuration returns the on-air duration of one payload bit.
func (m Mode) BitDuration() sim.Duration {
	switch m {
	case LE1M:
		return sim.Microsecond
	case LE2M:
		return sim.Microsecond / 2
	case LECoded125K:
		return 8 * sim.Microsecond
	case LECoded500K:
		return 2 * sim.Microsecond
	default:
		return sim.Microsecond
	}
}

// PreambleBytes returns the preamble length in bytes (1 for LE 1M, 2 for
// LE 2M; the coded PHY uses an 80 µs fixed preamble handled in AirTime).
func (m Mode) PreambleBytes() int {
	if m == LE2M {
		return 2
	}
	return 1
}

// Frame overhead sizes common to all uncoded PHYs.
const (
	// AccessAddressBytes is the length of the Access Address field.
	AccessAddressBytes = 4
	// CRCBytes is the length of the CRC field.
	CRCBytes = 3
)

// AirTime returns the on-air duration of a frame whose PDU (header +
// payload, excluding access address and CRC) is pduLen bytes.
//
// For LE 1M this is (1 + 4 + pduLen + 3) × 8 µs — e.g. the paper's 22-byte
// frame "22 bytes long over the air (i.e., 176 µs of transmission time
// using the LE 1M physical layer)" counts preamble+AA+PDU+CRC.
func (m Mode) AirTime(pduLen int) sim.Duration {
	switch m {
	case LE1M, LE2M:
		total := m.PreambleBytes() + AccessAddressBytes + pduLen + CRCBytes
		return sim.Duration(total*8) * m.BitDuration()
	case LECoded125K, LECoded500K:
		// 80 µs preamble + FEC block 1 (AA+CI+TERM1, S=8: 256+16+24 µs)
		// + payload coded at the selected rate + CRC + TERM2.
		const preamble = 80
		const fecBlock1 = 256 + 16 + 24
		payloadBits := (pduLen + CRCBytes) * 8
		var payloadUS int
		if m == LECoded125K {
			payloadUS = payloadBits*8 + 3*8 // TERM2 = 3 bits at S=8
		} else {
			payloadUS = payloadBits*2 + 3*2
		}
		return sim.Microseconds(int64(preamble + fecBlock1 + payloadUS))
	default:
		return 0
	}
}

// PreambleAATime returns how long after transmission start the receiver has
// seen the full preamble + access address, i.e. the earliest moment it can
// lock onto the frame.
func (m Mode) PreambleAATime() sim.Duration {
	switch m {
	case LE1M, LE2M:
		return sim.Duration((m.PreambleBytes()+AccessAddressBytes)*8) * m.BitDuration()
	case LECoded125K, LECoded500K:
		return sim.Microseconds(80 + 256)
	default:
		return 0
	}
}
