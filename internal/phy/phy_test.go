package phy

import (
	"math"
	"testing"
	"testing/quick"

	"injectable/internal/sim"
)

func TestAirTimeLE1MMatchesPaper(t *testing.T) {
	// The paper: a 22-byte frame over the air is 176 µs on LE 1M. The
	// 22 bytes count preamble+AA+PDU+CRC, so the PDU is 22-1-4-3 = 14 bytes.
	if got := LE1M.AirTime(14); got != sim.Microseconds(176) {
		t.Fatalf("LE1M 22-byte frame air time = %v, want 176µs", got)
	}
}

func TestAirTimeEmptyPDU(t *testing.T) {
	// Empty data PDU: 2-byte header, 0 payload → 10 bytes on air → 80 µs.
	if got := LE1M.AirTime(2); got != sim.Microseconds(80) {
		t.Fatalf("empty PDU air time = %v, want 80µs", got)
	}
}

func TestAirTimeLE2MHalvesUncoded(t *testing.T) {
	// LE 2M has a 2-byte preamble; for the same PDU the duration is
	// (2+4+n+3)*8 bits at 0.5 µs/bit.
	got := LE2M.AirTime(14)
	want := sim.Duration((2+4+14+3)*8) * (sim.Microsecond / 2)
	if got != want {
		t.Fatalf("LE2M air time = %v, want %v", got, want)
	}
}

func TestAirTimeCodedLongerThanUncoded(t *testing.T) {
	for _, m := range []Mode{LECoded500K, LECoded125K} {
		if m.AirTime(14) <= LE1M.AirTime(14) {
			t.Errorf("%v not longer than LE1M", m)
		}
	}
	if LECoded125K.AirTime(14) <= LECoded500K.AirTime(14) {
		t.Error("S=8 not longer than S=2")
	}
}

func TestPreambleAATime(t *testing.T) {
	if got := LE1M.PreambleAATime(); got != sim.Microseconds(40) {
		t.Errorf("LE1M preamble+AA = %v, want 40µs", got)
	}
	if got := LE2M.PreambleAATime(); got != sim.Microseconds(24) {
		t.Errorf("LE2M preamble+AA = %v, want 24µs", got)
	}
}

func TestModeString(t *testing.T) {
	cases := map[Mode]string{LE1M: "LE 1M", LE2M: "LE 2M", LECoded125K: "LE Coded S=8", LECoded500K: "LE Coded S=2", Mode(9): "Mode(9)"}
	for m, want := range cases {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), want)
		}
	}
}

func TestChannelFrequencies(t *testing.T) {
	// Spot-check the band plan from the Core Specification.
	cases := map[Channel]int{
		0: 2404, 10: 2424, 11: 2428, 36: 2478,
		37: 2402, 38: 2426, 39: 2480,
	}
	for ch, want := range cases {
		if got := ch.FrequencyMHz(); got != want {
			t.Errorf("channel %d frequency = %d, want %d", ch, got, want)
		}
	}
	if Channel(40).FrequencyMHz() != 0 {
		t.Error("invalid channel should map to 0 MHz")
	}
}

func TestChannelFrequenciesUnique(t *testing.T) {
	seen := map[int]Channel{}
	for c := Channel(0); c < NumChannels; c++ {
		f := c.FrequencyMHz()
		if prev, dup := seen[f]; dup {
			t.Fatalf("channels %d and %d share %d MHz", prev, c, f)
		}
		seen[f] = c
	}
}

func TestChannelClassification(t *testing.T) {
	for c := Channel(0); c <= 36; c++ {
		if !c.IsData() || c.IsAdvertising() || !c.Valid() {
			t.Errorf("channel %d misclassified", c)
		}
	}
	for _, c := range AdvChannels() {
		if c.IsData() || !c.IsAdvertising() || !c.Valid() {
			t.Errorf("adv channel %d misclassified", c)
		}
	}
	if Channel(40).Valid() {
		t.Error("channel 40 should be invalid")
	}
}

func TestWhiteningInit(t *testing.T) {
	if got := Channel(23).WhiteningInit(); got != 0x40|23 {
		t.Errorf("whitening init = %#x", got)
	}
}

func TestDBmConversions(t *testing.T) {
	if mw := DBm(0).Milliwatts(); math.Abs(mw-1) > 1e-12 {
		t.Errorf("0 dBm = %f mW", mw)
	}
	if mw := DBm(-30).Milliwatts(); math.Abs(mw-0.001) > 1e-12 {
		t.Errorf("-30 dBm = %f mW", mw)
	}
	if p := FromMilliwatts(100); math.Abs(float64(p)-20) > 1e-9 {
		t.Errorf("100 mW = %v", p)
	}
	if !math.IsInf(float64(FromMilliwatts(0)), -1) {
		t.Error("0 mW should be -inf dBm")
	}
}

func TestDBmRoundTripProperty(t *testing.T) {
	f := func(raw int8) bool {
		p := DBm(raw)
		back := FromMilliwatts(p.Milliwatts())
		return math.Abs(float64(back-p)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogDistanceLoss(t *testing.T) {
	m := &LogDistance{}
	ch := Channel(17)
	at1m := m.Loss(Position{}, Position{X: 1}, ch)
	// Free-space loss at 1 m, 2.44 GHz ≈ 40.2 dB.
	if math.Abs(float64(at1m)-40.2) > 0.5 {
		t.Errorf("loss at 1 m = %v, want ≈40.2 dB", at1m)
	}
	at2m := m.Loss(Position{}, Position{X: 2}, ch)
	if math.Abs(float64(at2m-at1m)-6.02) > 0.1 {
		t.Errorf("doubling distance added %v, want ≈6 dB", at2m-at1m)
	}
	at10m := m.Loss(Position{}, Position{X: 10}, ch)
	if math.Abs(float64(at10m-at1m)-20) > 0.1 {
		t.Errorf("10× distance added %v, want 20 dB", at10m-at1m)
	}
}

func TestLogDistanceExponent(t *testing.T) {
	free := &LogDistance{Exponent: 2}
	indoor := &LogDistance{Exponent: 2.7}
	ch := Channel(0)
	d := Position{X: 8}
	if indoor.Loss(Position{}, d, ch) <= free.Loss(Position{}, d, ch) {
		t.Error("higher exponent should increase loss")
	}
}

func TestLogDistanceNearFieldClamp(t *testing.T) {
	m := &LogDistance{}
	ch := Channel(0)
	l0 := m.Loss(Position{}, Position{}, ch)
	l5cm := m.Loss(Position{}, Position{X: 0.05}, ch)
	if l0 != l5cm {
		t.Error("near-field distances should clamp identically")
	}
	if math.IsInf(float64(l0), 0) || math.IsNaN(float64(l0)) {
		t.Error("zero distance produced non-finite loss")
	}
}

func TestWallAttenuation(t *testing.T) {
	wall := Wall{A: Position{X: 1, Y: -5}, B: Position{X: 1, Y: 5}, Loss: DefaultWallLoss}
	m := &LogDistance{Walls: []Wall{wall}}
	ch := Channel(0)
	through := m.Loss(Position{}, Position{X: 2}, ch)
	clear := (&LogDistance{}).Loss(Position{}, Position{X: 2}, ch)
	if math.Abs(float64(through-clear-DefaultWallLoss)) > 1e-9 {
		t.Errorf("wall added %v, want %v", through-clear, DefaultWallLoss)
	}
	// A path parallel to the wall must not pay the loss.
	side := m.Loss(Position{X: 2, Y: 0}, Position{X: 2, Y: 3}, ch)
	sideClear := (&LogDistance{}).Loss(Position{X: 2, Y: 0}, Position{X: 2, Y: 3}, ch)
	if side != sideClear {
		t.Error("non-crossing path paid wall loss")
	}
}

func TestWallBlocksGeometry(t *testing.T) {
	w := Wall{A: Position{X: 0, Y: 0}, B: Position{X: 0, Y: 10}}
	tests := []struct {
		p, q Position
		want bool
	}{
		{Position{X: -1, Y: 5}, Position{X: 1, Y: 5}, true},    // crosses
		{Position{X: 1, Y: 5}, Position{X: 2, Y: 5}, false},    // same side
		{Position{X: -1, Y: 20}, Position{X: 1, Y: 20}, false}, /* beyond end */
		{Position{X: 0, Y: 5}, Position{X: 1, Y: 5}, true},     // touches endpoint on wall
	}
	for i, tc := range tests {
		if got := w.Blocks(tc.p, tc.q); got != tc.want {
			t.Errorf("case %d: Blocks(%v,%v) = %v, want %v", i, tc.p, tc.q, got, tc.want)
		}
	}
}

func TestReceivedPower(t *testing.T) {
	m := &LogDistance{}
	rssi := ReceivedPower(m, DefaultTxPower, Position{}, Position{X: 2}, Channel(17))
	if rssi > -40 || rssi < -60 {
		t.Errorf("RSSI at 2 m = %v, expected ≈-46 dBm", rssi)
	}
}

func TestPositionDistance(t *testing.T) {
	if d := (Position{X: 3, Y: 4}).Distance(Position{}); d != 5 {
		t.Errorf("distance = %f, want 5", d)
	}
}

func TestPropagationDelayNegligible(t *testing.T) {
	if d := PropagationDelay(10); d > 50e-9 {
		t.Errorf("10 m delay = %g s, should be ~33 ns", d)
	}
}
