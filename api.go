package injectable

import (
	"io"

	"injectable/internal/att"
	"injectable/internal/ble"
	"injectable/internal/ble/pdu"
	"injectable/internal/devices"
	"injectable/internal/gatt"
	"injectable/internal/host"
	"injectable/internal/ids"
	"injectable/internal/injectable"
	"injectable/internal/link"
	"injectable/internal/medium"
	"injectable/internal/obs"
	"injectable/internal/phy"
	"injectable/internal/sim"
)

// --- simulation kernel ------------------------------------------------------

// Simulation time and durations (nanosecond-resolution virtual time).
type (
	// Time is an instant in virtual simulation time.
	Time = sim.Time
	// Duration is a span of virtual time.
	Duration = sim.Duration
	// Tracer receives structured simulation events.
	Tracer = sim.Tracer
	// TraceEvent is one structured trace record.
	TraceEvent = sim.TraceEvent
)

// Duration units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// NewRecordingTracer records trace events in memory, optionally filtered
// by kind.
func NewRecordingTracer(kinds ...string) *sim.RecordingTracer {
	return sim.NewRecordingTracer(kinds...)
}

// NewBoundedRecordingTracer records at most limit events, dropping the
// oldest once full (a drop-oldest ring buffer for long runs).
func NewBoundedRecordingTracer(limit int, kinds ...string) *sim.RecordingTracer {
	return sim.NewBoundedRecordingTracer(limit, kinds...)
}

// --- observability -----------------------------------------------------------

type (
	// ObsHub bundles a metrics registry and an injection forensics ledger;
	// pass one in WorldConfig.Obs to instrument every layer of a world.
	ObsHub = obs.Hub
	// MetricsSnapshot is a deterministic point-in-time registry view.
	MetricsSnapshot = obs.Snapshot
	// InjectionRecord is one forensics-ledger entry: the full story of one
	// injection attempt across phy, medium and link.
	InjectionRecord = obs.InjectionRecord
)

// NewObsHub returns a hub with a fresh metrics registry and forensics
// ledger.
func NewObsHub() *ObsHub { return obs.NewHub() }

// WriteMetricsJSONL exports a metrics snapshot (and, when non-nil, the
// forensics ledger) as JSON lines. Output is byte-stable per run.
func WriteMetricsJSONL(w io.Writer, snap *MetricsSnapshot, ledger *obs.Ledger) error {
	return obs.WriteMetricsJSONL(w, snap, ledger)
}

// WriteChromeTrace exports recorded trace events (plus the ledger's
// injection attempts) in Chrome trace_event format for Perfetto or
// about:tracing.
func WriteChromeTrace(w io.Writer, events []TraceEvent, dropped int, ledger *obs.Ledger) error {
	return obs.WriteChromeTrace(w, events, dropped, ledger)
}

// --- radio environment ------------------------------------------------------

type (
	// World is one simulated radio environment.
	World = host.World
	// WorldConfig configures a World.
	WorldConfig = host.WorldConfig
	// Device is a positioned radio with clock and identity.
	Device = host.Device
	// DeviceConfig describes one radio device.
	DeviceConfig = host.DeviceConfig
	// Position is a point in the floor plan, in metres.
	Position = phy.Position
	// Wall is an attenuating obstacle segment.
	Wall = phy.Wall
	// MediumConfig configures propagation and collision capture.
	MediumConfig = medium.Config
	// CaptureModel decides whether collided frames survive.
	CaptureModel = medium.CaptureModel
	// Address is a 48-bit Bluetooth device address.
	Address = ble.Address
)

// NewWorld creates an empty radio environment.
func NewWorld(cfg WorldConfig) *World { return host.NewWorld(cfg) }

// LogDistancePathLoss builds the default propagation model with optional
// walls and path-loss exponent (0 = free space's 2.0).
func LogDistancePathLoss(exponent float64, walls ...Wall) *phy.LogDistance {
	return &phy.LogDistance{Exponent: exponent, Walls: walls}
}

// DefaultCaptureModel returns the calibrated phase-capture collision model.
func DefaultCaptureModel() CaptureModel { return medium.DefaultCaptureModel() }

// --- BLE stack roles ---------------------------------------------------------

type (
	// Peripheral is the GAP Peripheral role: advertiser + GATT server.
	Peripheral = host.Peripheral
	// PeripheralConfig configures a Peripheral.
	PeripheralConfig = host.PeripheralConfig
	// Central is the GAP Central role: initiator + GATT client.
	Central = host.Central
	// CentralConfig configures a Central.
	CentralConfig = host.CentralConfig
	// Conn is one end of an established connection.
	Conn = link.Conn
	// ConnParams is the connection parameter set of CONNECT_REQ.
	ConnParams = link.ConnParams
	// DisconnectReason says why a connection ended.
	DisconnectReason = link.DisconnectReason
	// Service is a GATT service under construction.
	Service = gatt.Service
	// Characteristic is a GATT characteristic.
	Characteristic = gatt.Characteristic
	// UUID is an attribute type.
	UUID = att.UUID
	// DataPDU is a Link Layer data PDU.
	DataPDU = pdu.DataPDU
)

// NewPeripheral builds a peripheral role on a device.
func NewPeripheral(dev *Device, cfg PeripheralConfig) *Peripheral {
	return host.NewPeripheral(dev, cfg)
}

// NewCentral builds a central role on a device.
func NewCentral(dev *Device, cfg CentralConfig) *Central {
	return host.NewCentral(dev, cfg)
}

// UUID16 builds a 16-bit SIG UUID.
func UUID16(v uint16) UUID { return att.UUID16(v) }

// GATT characteristic properties.
const (
	PropRead            = gatt.PropRead
	PropWrite           = gatt.PropWrite
	PropWriteNoResponse = gatt.PropWriteNoResponse
	PropNotify          = gatt.PropNotify
	PropIndicate        = gatt.PropIndicate
)

// --- the paper's target devices ----------------------------------------------

type (
	// Lightbulb is the RGB bulb of the paper's experiments.
	Lightbulb = devices.Lightbulb
	// Keyfob is the findable keyfob of §VI-A.
	Keyfob = devices.Keyfob
	// Smartwatch is the watch of §VI-A/§VI-D.
	Smartwatch = devices.Smartwatch
	// Smartphone is the long-lived-connection Central.
	Smartphone = devices.Smartphone
	// SmartphoneConfig configures the phone model.
	SmartphoneConfig = devices.SmartphoneConfig
)

// NewLightbulb builds the bulb on a device.
func NewLightbulb(dev *Device) *Lightbulb { return devices.NewLightbulb(dev) }

// NewKeyfob builds the keyfob on a device.
func NewKeyfob(dev *Device) *Keyfob { return devices.NewKeyfob(dev) }

// NewSmartwatch builds the watch on a device.
func NewSmartwatch(dev *Device) *Smartwatch { return devices.NewSmartwatch(dev) }

// NewSmartphone builds the phone on a device.
func NewSmartphone(dev *Device, cfg SmartphoneConfig) *Smartphone {
	return devices.NewSmartphone(dev, cfg)
}

// Vendor protocol command builders for the lightbulb (the payload sizes of
// the paper's experiment 2).
var (
	PowerCommand      = devices.PowerCommand
	ColorCommand      = devices.ColorCommand
	BrightnessCommand = devices.BrightnessCommand
	ToggleCommand     = devices.ToggleCommand
	RingCommand       = devices.RingCommand
)

// --- the attack ---------------------------------------------------------------

type (
	// Attacker bundles the InjectaBLE tooling on one radio.
	Attacker = injectable.Attacker
	// Sniffer follows connections passively.
	Sniffer = injectable.Sniffer
	// Injector performs the window-widening race.
	Injector = injectable.Injector
	// InjectorConfig tunes the race.
	InjectorConfig = injectable.InjectorConfig
	// Report summarises an injection run.
	Report = injectable.Report
	// Attempt records one injection attempt.
	Attempt = injectable.Attempt
	// ReadReport extends Report with extracted read data.
	ReadReport = injectable.ReadReport
	// ConnState is the attacker's live view of a connection.
	ConnState = injectable.ConnState
	// SlaveHijack is an in-progress slave impersonation (scenario B).
	SlaveHijack = injectable.SlaveHijack
	// MasterHijack is an in-progress master impersonation (scenario C).
	MasterHijack = injectable.MasterHijack
	// MITM is the dual-leg relay of scenario D.
	MITM = injectable.MITM
	// MITMConfig tunes the relay and its mutation hooks.
	MITMConfig = injectable.MITMConfig
	// UpdateParams are forged CONNECTION_UPDATE values.
	UpdateParams = injectable.UpdateParams
	// Recovery synchronises with an established connection.
	Recovery = injectable.Recovery
	// RecoveryConfig tunes parameter recovery.
	RecoveryConfig = injectable.RecoveryConfig
)

// NewAttacker builds the attack tooling on a device stack.
func NewAttacker(stack *link.Stack, cfg InjectorConfig) *Attacker {
	return injectable.NewAttacker(stack, cfg)
}

// NewRecovery builds a parameter-recovery engine on a device stack.
func NewRecovery(stack *link.Stack, cfg RecoveryConfig) *Recovery {
	return injectable.NewRecovery(stack, cfg)
}

// Forged-frame builders (SN/NESN are set by the injector per eq. 6).
var (
	ForgeATTWriteCommand  = injectable.ForgeATTWriteCommand
	ForgeATTWriteRequest  = injectable.ForgeATTWriteRequest
	ForgeATTReadRequest   = injectable.ForgeATTReadRequest
	ForgeTerminateInd     = injectable.ForgeTerminateInd
	ForgeConnectionUpdate = injectable.ForgeConnectionUpdate
)

// --- defence -------------------------------------------------------------------

type (
	// Monitor is the passive IDS of paper §VIII.
	Monitor = ids.Monitor
	// MonitorConfig tunes the IDS.
	MonitorConfig = ids.Config
	// Alert is one IDS detection.
	Alert = ids.Alert
	// AlertKind classifies detections.
	AlertKind = ids.AlertKind
)

// IDS alert kinds.
const (
	AlertDoubleFrame     = ids.AlertDoubleFrame
	AlertAnchorDeviation = ids.AlertAnchorDeviation
	AlertScheduleSplit   = ids.AlertScheduleSplit
	AlertRogueUpdate     = ids.AlertRogueUpdate
	AlertJamming         = ids.AlertJamming
)

// NewMonitor builds the IDS; attach it with World.Medium.AddObserver.
func NewMonitor(cfg MonitorConfig) *Monitor { return ids.New(cfg) }

// --- §IX extension: keystroke injection -----------------------------------

type (
	// Keyboard is a HID-over-GATT keyboard profile (legitimate or forged).
	Keyboard = devices.Keyboard
	// Computer is a HID-capable central host that auto-attaches to
	// keyboards — the behaviour the §IX keystroke injection abuses.
	Computer = devices.Computer
	// KeystrokeInjection is the §IX chain: slave hijack + forged keyboard.
	KeystrokeInjection = injectable.KeystrokeInjection
)

// NewKeyboardProfile builds a HID keyboard GATT profile.
func NewKeyboardProfile(name string) *Keyboard { return devices.NewKeyboardProfile(name) }

// NewComputer builds a HID-host central on a device.
func NewComputer(dev *Device) *Computer { return devices.NewComputer(dev) }
