package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"injectable/internal/serve"
)

func TestUnknownRunNameListsExperimentsAndFailsNonzero(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-run", "nosuchexperiment"}, &stdout, &stderr)
	if code == 0 {
		t.Fatal("unknown -run name exited 0")
	}
	msg := stderr.String()
	if !strings.Contains(msg, `"nosuchexperiment"`) {
		t.Errorf("stderr does not name the bad experiment:\n%s", msg)
	}
	// Every runnable name must be offered to the user, on stderr.
	for _, name := range append([]string{"all", "list"}, experimentOrder...) {
		if !strings.Contains(msg, name) {
			t.Errorf("stderr missing available name %q:\n%s", name, msg)
		}
	}
	if stdout.Len() != 0 {
		t.Errorf("error path wrote to stdout: %q", stdout.String())
	}
}

func TestListPrintsEveryRunnerName(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-run", "list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("list exited %d: %s", code, stderr.String())
	}
	got := strings.Fields(stdout.String())
	if len(got) != len(experimentOrder) {
		t.Fatalf("list printed %d names, want %d", len(got), len(experimentOrder))
	}
	for i, name := range experimentOrder {
		if got[i] != name {
			t.Errorf("list[%d] = %q, want %q", i, got[i], name)
		}
	}
}

func TestBadFlagFailsNonzero(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr); code == 0 {
		t.Fatal("bad flag exited 0")
	}
}

// TestParallelOutputByteIdentical drives the real CLI path end to end: the
// same -seed must produce the same stdout bytes at -parallel 1 and 8.
func TestParallelOutputByteIdentical(t *testing.T) {
	render := func(parallel string) string {
		var stdout, stderr strings.Builder
		code := run([]string{"-run", "exp2", "-trials", "2", "-q", "-parallel", parallel},
			&stdout, &stderr)
		if code != 0 {
			t.Fatalf("-parallel %s exited %d: %s", parallel, code, stderr.String())
		}
		return stdout.String()
	}
	serial, parallel := render("1"), render("8")
	if serial != parallel {
		t.Errorf("-parallel 8 output differs from -parallel 1:\n%s\n--- vs ---\n%s",
			parallel, serial)
	}
}

// TestNDJSONMatchesServedCampaign pins the batch CLI and the daemon to
// one deterministic stream format: -ndjson output for a sweep must be
// byte-identical to the NDJSON a served job of the same spec returns.
func TestNDJSONMatchesServedCampaign(t *testing.T) {
	path := filepath.Join(t.TempDir(), "exp1.ndjson")
	var stdout, stderr strings.Builder
	code := run([]string{"-run", "exp1", "-trials", "1", "-q", "-parallel", "1",
		"-seed", "1000", "-ndjson", path}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("CLI exited %d: %s", code, stderr.String())
	}
	cli, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	s := serve.NewServer(serve.Config{TrialWorkers: 4})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	res, err := (&serve.Client{Base: ts.URL}).Run(context.Background(),
		serve.JobSpec{Experiment: "exp1", Trials: 1, SeedBase: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cli, res.Body) {
		t.Errorf("CLI -ndjson differs from served campaign:\n%s\n--- vs ---\n%s",
			cli, res.Body)
	}
}
