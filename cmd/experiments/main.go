// Command experiments regenerates the paper's evaluation: every table and
// figure, the four attack scenarios on all three devices, the encryption
// countermeasure, the IDS study, the prior-art baselines and the design
// ablations.
//
// Usage:
//
//	experiments -run all                 # everything (the EXPERIMENTS.md run)
//	experiments -run exp1|exp2|exp3|exp3wall
//	experiments -run tableI|tableII|fig1|...|fig8
//	experiments -run scenarioA|scenarioB|scenarioC|scenarioD|keystrokes
//	experiments -run encrypted|ids|idsvalidation|countermeasures|baselines|ablations
//	experiments -run list                # list all experiment names
//	experiments -run exp1 -trials 25 -seed 1000
package main

import (
	"flag"
	"fmt"
	"os"

	"injectable/internal/experiments"
	"injectable/internal/ids"
)

func main() {
	run := flag.String("run", "all", "which experiment to run (see usage)")
	trials := flag.Int("trials", 25, "trials per configuration (paper: 25)")
	seed := flag.Uint64("seed", 1000, "base seed")
	quiet := flag.Bool("q", false, "suppress progress dots")
	flag.Parse()

	opts := experiments.Options{TrialsPerPoint: *trials, SeedBase: *seed}
	if !*quiet {
		opts.Progress = func(point string, trial int) {
			fmt.Fprintf(os.Stderr, "\r%-20s trial %d   ", point, trial+1)
		}
	}
	newline := func() {
		if !*quiet {
			fmt.Fprintln(os.Stderr)
		}
	}

	runners := map[string]func() error{
		"tableI":  func() error { fmt.Println(experiments.TableIFrameFormat().Render()); return nil },
		"tableII": func() error { fmt.Println(experiments.TableIIConnectReq().Render()); return nil },
		"fig1":    tableErr(func() (*experiments.Table, error) { return experiments.Fig1ConnectionEvents(*seed) }),
		"fig2":    tableErr(func() (*experiments.Table, error) { return experiments.Fig2ConnectionUpdate(*seed) }),
		"fig3":    tableErr(func() (*experiments.Table, error) { return experiments.Fig3AttackOverview(*seed) }),
		"fig4":    func() error { fmt.Println(experiments.Fig4WindowWidening().Render()); return nil },
		"fig5":    tableErr(func() (*experiments.Table, error) { return experiments.Fig5InjectionOutcomes(*seed) }),
		"fig6":    tableErr(func() (*experiments.Table, error) { return experiments.Fig6SlaveHijack(*seed) }),
		"fig7":    tableErr(func() (*experiments.Table, error) { return experiments.Fig7MitM(*seed) }),
		"fig8":    func() error { fmt.Println(experiments.Fig8Topology().Render()); return nil },
		"exp1": expErr(func() (*experiments.Experiment, error) {
			return experiments.Experiment1HopInterval(opts)
		}, newline),
		"exp2": expErr(func() (*experiments.Experiment, error) {
			return experiments.Experiment2PayloadSize(opts)
		}, newline),
		"exp3": expErr(func() (*experiments.Experiment, error) {
			return experiments.Experiment3Distance(opts)
		}, newline),
		"exp3wall": expErr(func() (*experiments.Experiment, error) {
			return experiments.Experiment3Wall(opts)
		}, newline),
		"scenarioA": scenarioRunner("scenario A — illegitimate feature use (§VI-A)", experiments.RunScenarioA, *seed),
		"scenarioB": scenarioRunner("scenario B — slave hijack (§VI-B)", experiments.RunScenarioB, *seed),
		"scenarioC": scenarioRunner("scenario C — master hijack (§VI-C)", experiments.RunScenarioC, *seed),
		"scenarioD": scenarioRunner("scenario D — man-in-the-middle (§VI-D)", experiments.RunScenarioD, *seed),
		"keystrokes": func() error {
			out, err := experiments.RunScenarioKeystrokes(*seed, false)
			if err != nil {
				return err
			}
			t := &experiments.Table{
				Title:  "§IX extension — HID keystroke injection after slave hijack",
				Header: []string{"target", "success", "hijack attempts", "detail"},
				Rows: [][]string{{
					out.Target, fmt.Sprintf("%t", out.Success),
					fmt.Sprintf("%d", out.Attempts), out.Detail,
				}},
			}
			fmt.Println(t.Render())
			return nil
		},
		"encrypted": func() error {
			out, err := experiments.RunEncryptedInjection(*seed)
			if err != nil {
				return err
			}
			t := &experiments.Table{
				Title:  "encryption countermeasure (§IV): injection on an encrypted link",
				Header: []string{"paired+encrypted", "feature triggered", "DoS (MIC-failure drop)"},
				Rows: [][]string{{
					fmt.Sprintf("%t", out.Paired),
					fmt.Sprintf("%t (must be false)", out.FeatureTriggered),
					fmt.Sprintf("%t", out.ConnectionDropped),
				}},
			}
			fmt.Println(t.Render())
			return nil
		},
		"ids": func() error { return runIDS(*seed) },
		"countermeasures": func() error {
			outs, err := experiments.WideningReduction(*trials, *seed+8000, func(i int) {
				if !*quiet {
					fmt.Fprintf(os.Stderr, "\rwidening-reduction run %d   ", i+1)
				}
			})
			newline()
			if err != nil {
				return err
			}
			fmt.Println(experiments.WideningReductionTable(outs, *trials).Render())
			app, err := experiments.RunAppLayerCrypto(*seed + 8100)
			if err != nil {
				return err
			}
			fmt.Println(experiments.AppLayerCryptoTable(app).Render())
			return nil
		},
		"idsvalidation": func() error {
			t, err := experiments.IDSValidation(*trials, *seed+3000, func(i int) {
				if !*quiet {
					fmt.Fprintf(os.Stderr, "\rids-validation run %d   ", i+1)
				}
			})
			newline()
			if err != nil {
				return err
			}
			fmt.Println(t.Render())
			return nil
		},
		"baselines": func() error {
			jam, err := experiments.RunBTLEJackBaseline(*seed)
			if err != nil {
				return err
			}
			inj, err := experiments.RunInjectaBLEMasterHijackComparison(*seed)
			if err != nil {
				return err
			}
			pre, err := experiments.RunGATTackerBaseline(*seed, false)
			if err != nil {
				return err
			}
			post, err := experiments.RunGATTackerBaseline(*seed, true)
			if err != nil {
				return err
			}
			fmt.Println(experiments.BaselineTable([]experiments.BaselineOutcome{jam, inj, pre, post}).Render())
			return nil
		},
		"ablations": func() error {
			for _, f := range []func(experiments.Options) (*experiments.Experiment, error){
				experiments.AblationCaptureModel,
				experiments.AblationAssumedSlaveSCA,
				experiments.AblationInjectionTiming,
				experiments.AblationAdaptiveGuard,
			} {
				exp, err := f(opts)
				if err != nil {
					return err
				}
				newline()
				fmt.Println(exp.Table().Render())
			}
			t, err := experiments.HeuristicValidation(opts)
			if err != nil {
				return err
			}
			newline()
			fmt.Println(t.Render())
			return nil
		},
	}

	order := []string{
		"tableI", "tableII", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"exp1", "exp2", "exp3", "exp3wall",
		"scenarioA", "scenarioB", "scenarioC", "scenarioD", "keystrokes",
		"encrypted", "ids", "idsvalidation", "countermeasures", "baselines", "ablations",
	}
	if *run == "list" {
		for _, name := range order {
			fmt.Println(name)
		}
		return
	}
	if *run == "all" {
		for _, name := range order {
			if err := runners[name](); err != nil {
				fatal(fmt.Errorf("%s: %w", name, err))
			}
		}
		return
	}
	r, ok := runners[*run]
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q (use -run list)", *run))
	}
	if err := r(); err != nil {
		fatal(err)
	}
}

// runIDS measures detection across the scenarios plus a clean control.
func runIDS(seed uint64) error {
	t := &experiments.Table{
		Title:  "IDS detection study (§VIII): alerts per attack",
		Header: []string{"workload", "double-frame", "anchor-dev", "sched-split", "rogue-update", "jamming"},
	}
	row := func(name string, alerts map[ids.AlertKind]int) {
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", alerts[ids.AlertDoubleFrame]),
			fmt.Sprintf("%d", alerts[ids.AlertAnchorDeviation]),
			fmt.Sprintf("%d", alerts[ids.AlertScheduleSplit]),
			fmt.Sprintf("%d", alerts[ids.AlertRogueUpdate]),
			fmt.Sprintf("%d", alerts[ids.AlertJamming]),
		})
	}
	for _, sc := range []struct {
		name string
		run  func(string, uint64, bool) (experiments.ScenarioOutcome, error)
	}{
		{"scenario A", experiments.RunScenarioA},
		{"scenario B", experiments.RunScenarioB},
		{"scenario C", experiments.RunScenarioC},
		{"scenario D", experiments.RunScenarioD},
	} {
		out, err := sc.run("lightbulb", seed, true)
		if err != nil {
			return err
		}
		row(sc.name, out.IDSAlerts)
	}
	fmt.Println(t.Render())
	return nil
}

func tableErr(f func() (*experiments.Table, error)) func() error {
	return func() error {
		t, err := f()
		if err != nil {
			return err
		}
		fmt.Println(t.Render())
		return nil
	}
}

func expErr(f func() (*experiments.Experiment, error), newline func()) func() error {
	return func() error {
		exp, err := f()
		newline()
		if err != nil {
			return err
		}
		fmt.Println(exp.Table().Render())
		return nil
	}
}

func scenarioRunner(title string, run func(string, uint64, bool) (experiments.ScenarioOutcome, error), seed uint64) func() error {
	return func() error {
		var outcomes []experiments.ScenarioOutcome
		for _, target := range experiments.ScenarioTargets() {
			out, err := run(target, seed, false)
			if err != nil {
				return err
			}
			outcomes = append(outcomes, out)
		}
		fmt.Println(experiments.ScenarioTable("", title, outcomes).Render())
		return nil
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
