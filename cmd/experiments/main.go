// Command experiments regenerates the paper's evaluation: every table and
// figure, the four attack scenarios on all three devices, the encryption
// countermeasure, the IDS study, the prior-art baselines and the design
// ablations.
//
// Usage:
//
//	experiments -run all                 # everything (the EXPERIMENTS.md run)
//	experiments -run exp1|exp2|exp3|exp3wall
//	experiments -run tableI|tableII|fig1|...|fig8
//	experiments -run scenarioA|scenarioB|scenarioC|scenarioD|keystrokes
//	experiments -run encrypted|ids|idsvalidation|countermeasures|baselines|ablations
//	experiments -run list                # list all experiment names
//	experiments -run exp1 -trials 25 -seed 1000
//	experiments -run exp1 -parallel 8    # fan trials over 8 workers (same output)
//	experiments -run exp1 -jsonl exp1.jsonl  # stream per-trial results
//	experiments -run exp1 -ndjson exp1.ndjson  # deterministic result stream (diffable against injectabled)
//	experiments -run exp1 -metrics exp1-metrics.jsonl  # aggregated per-point metrics
//	experiments -run exp1 -v             # campaign summary (workers, utilization)
//	experiments -run exp1 -pprof localhost:6060  # live pprof during the run
//	experiments -spec world.json         # run a declarative scenario (internal/scenario)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"injectable/internal/experiments"
	"injectable/internal/ids"
	"injectable/internal/obs"
	"injectable/internal/scenario"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// experimentOrder is the -run all sequence (and the -run list output).
var experimentOrder = []string{
	"tableI", "tableII", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
	"exp1", "exp2", "exp3", "exp3wall", "counterfactual",
	"scenarioA", "scenarioB", "scenarioC", "scenarioD", "keystrokes",
	"encrypted", "ids", "idsvalidation", "countermeasures", "baselines", "ablations",
}

// run is main minus the process exit, so tests can drive the CLI.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runName := fs.String("run", "all", "which experiment to run (see usage)")
	trials := fs.Int("trials", 25, "trials per configuration (paper: 25)")
	seed := fs.Uint64("seed", 1000, "base seed")
	quiet := fs.Bool("q", false, "suppress progress dots")
	parallel := fs.Int("parallel", 0, "campaign workers: 0 = all cores, 1 = serial (output is identical either way)")
	jsonlPath := fs.String("jsonl", "", "stream per-trial campaign results as JSON lines to this file")
	ndjsonPath := fs.String("ndjson", "", "stream the deterministic per-trial result lines (no wall-clock fields; byte-identical to a served campaign of the same spec) to this file")
	metricsPath := fs.String("metrics", "", "write aggregated per-point metric snapshots as JSON lines to this file")
	verbose := fs.Bool("v", false, "print the campaign run summary (workers, trials, utilization) to stderr")
	warmup := fs.String("warmup", "", `sweep trial strategy: "" (per-trial worlds), "shared" (fork a warm snapshot per point) or "shared-fresh" (fork reference)`)
	specPath := fs.String("spec", "", "run a declarative scenario spec file (JSON) instead of a catalog -run name")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address during the run")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if !experiments.ValidWarmup(*warmup) {
		fmt.Fprintf(stderr, "experiments: unknown -warmup %q (want \"\", %q or %q)\n",
			*warmup, experiments.WarmupShared, experiments.WarmupSharedFresh)
		return 2
	}

	if *pprofAddr != "" {
		srv, err := obs.StartDebugServer(*pprofAddr)
		if err != nil {
			fmt.Fprintln(stderr, "experiments:", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "pprof: http://%s/debug/pprof/\n", srv.Addr())
	}

	opts := experiments.Options{TrialsPerPoint: *trials, SeedBase: *seed, Parallel: *parallel, Warmup: *warmup}
	if *verbose {
		opts.Verbose = stderr
	}
	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			fmt.Fprintln(stderr, "experiments:", err)
			return 1
		}
		defer f.Close()
		opts.Metrics = f
	}
	if !*quiet {
		opts.Progress = func(point string, trial int) {
			fmt.Fprintf(stderr, "\r%-20s trial %d   ", point, trial+1)
		}
	}
	if *jsonlPath != "" {
		f, err := os.Create(*jsonlPath)
		if err != nil {
			fmt.Fprintln(stderr, "experiments:", err)
			return 1
		}
		defer f.Close()
		opts.JSONL = f
	}
	if *ndjsonPath != "" {
		f, err := os.Create(*ndjsonPath)
		if err != nil {
			fmt.Fprintln(stderr, "experiments:", err)
			return 1
		}
		defer f.Close()
		opts.NDJSON = f
	}
	newline := func() {
		if !*quiet {
			fmt.Fprintln(stderr)
		}
	}
	if *specPath != "" {
		raw, err := os.ReadFile(*specPath)
		if err != nil {
			fmt.Fprintln(stderr, "experiments:", err)
			return 1
		}
		sp, err := scenario.DecodeSpec(raw)
		if err != nil {
			fmt.Fprintln(stderr, "experiments:", err)
			return 2
		}
		exp, err := scenario.Execute(sp, opts)
		newline()
		if err != nil {
			fmt.Fprintln(stderr, "experiments:", err)
			return 1
		}
		fmt.Fprintln(stdout, exp.Table().Render())
		return 0
	}
	tableErr := func(f func() (*experiments.Table, error)) func() error {
		return func() error {
			t, err := f()
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, t.Render())
			return nil
		}
	}
	expErr := func(f func() (*experiments.Experiment, error)) func() error {
		return func() error {
			exp, err := f()
			newline()
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, exp.Table().Render())
			return nil
		}
	}
	scenarioRunner := func(title string, scRun func(string, uint64, bool) (experiments.ScenarioOutcome, error)) func() error {
		return func() error {
			var outcomes []experiments.ScenarioOutcome
			for _, target := range experiments.ScenarioTargets() {
				out, err := scRun(target, *seed, false)
				if err != nil {
					return err
				}
				outcomes = append(outcomes, out)
			}
			fmt.Fprintln(stdout, experiments.ScenarioTable("", title, outcomes).Render())
			return nil
		}
	}
	// withSeedOffset shifts the campaign seed base, preserving the
	// historical per-study seed layout.
	withSeedOffset := func(off uint64) experiments.Options {
		o := opts
		o.SeedBase = *seed + off
		return o
	}

	runners := map[string]func() error{
		"tableI":  func() error { fmt.Fprintln(stdout, experiments.TableIFrameFormat().Render()); return nil },
		"tableII": func() error { fmt.Fprintln(stdout, experiments.TableIIConnectReq().Render()); return nil },
		"fig1":    tableErr(func() (*experiments.Table, error) { return experiments.Fig1ConnectionEvents(*seed) }),
		"fig2":    tableErr(func() (*experiments.Table, error) { return experiments.Fig2ConnectionUpdate(*seed) }),
		"fig3":    tableErr(func() (*experiments.Table, error) { return experiments.Fig3AttackOverview(*seed) }),
		"fig4":    func() error { fmt.Fprintln(stdout, experiments.Fig4WindowWidening().Render()); return nil },
		"fig5":    tableErr(func() (*experiments.Table, error) { return experiments.Fig5InjectionOutcomes(*seed) }),
		"fig6":    tableErr(func() (*experiments.Table, error) { return experiments.Fig6SlaveHijack(*seed) }),
		"fig7":    tableErr(func() (*experiments.Table, error) { return experiments.Fig7MitM(*seed) }),
		"fig8":    func() error { fmt.Fprintln(stdout, experiments.Fig8Topology().Render()); return nil },
		"exp1": expErr(func() (*experiments.Experiment, error) {
			return experiments.Experiment1HopInterval(opts)
		}),
		"exp2": expErr(func() (*experiments.Experiment, error) {
			return experiments.Experiment2PayloadSize(opts)
		}),
		"exp3": expErr(func() (*experiments.Experiment, error) {
			return experiments.Experiment3Distance(opts)
		}),
		"exp3wall": expErr(func() (*experiments.Experiment, error) {
			return experiments.Experiment3Wall(opts)
		}),
		"counterfactual": func() error {
			pts, err := experiments.ExperimentCounterfactual(opts)
			newline()
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, experiments.CounterfactualTable(pts).Render())
			return nil
		},
		"scenarioA": scenarioRunner("scenario A — illegitimate feature use (§VI-A)", experiments.RunScenarioA),
		"scenarioB": scenarioRunner("scenario B — slave hijack (§VI-B)", experiments.RunScenarioB),
		"scenarioC": scenarioRunner("scenario C — master hijack (§VI-C)", experiments.RunScenarioC),
		"scenarioD": scenarioRunner("scenario D — man-in-the-middle (§VI-D)", experiments.RunScenarioD),
		"keystrokes": func() error {
			out, err := experiments.RunScenarioKeystrokes(*seed, false)
			if err != nil {
				return err
			}
			t := &experiments.Table{
				Title:  "§IX extension — HID keystroke injection after slave hijack",
				Header: []string{"target", "success", "hijack attempts", "detail"},
				Rows: [][]string{{
					out.Target, fmt.Sprintf("%t", out.Success),
					fmt.Sprintf("%d", out.Attempts), out.Detail,
				}},
			}
			fmt.Fprintln(stdout, t.Render())
			return nil
		},
		"encrypted": func() error {
			out, err := experiments.RunEncryptedInjection(*seed)
			if err != nil {
				return err
			}
			t := &experiments.Table{
				Title:  "encryption countermeasure (§IV): injection on an encrypted link",
				Header: []string{"paired+encrypted", "feature triggered", "DoS (MIC-failure drop)"},
				Rows: [][]string{{
					fmt.Sprintf("%t", out.Paired),
					fmt.Sprintf("%t (must be false)", out.FeatureTriggered),
					fmt.Sprintf("%t", out.ConnectionDropped),
				}},
			}
			fmt.Fprintln(stdout, t.Render())
			return nil
		},
		"ids": func() error { return runIDS(stdout, *seed) },
		"countermeasures": func() error {
			outs, err := experiments.WideningReduction(withSeedOffset(8000))
			newline()
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, experiments.WideningReductionTable(outs, *trials).Render())
			app, err := experiments.RunAppLayerCrypto(*seed + 8100)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, experiments.AppLayerCryptoTable(app).Render())
			return nil
		},
		"idsvalidation": func() error {
			t, err := experiments.IDSValidation(withSeedOffset(3000))
			newline()
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, t.Render())
			return nil
		},
		"baselines": func() error {
			jam, err := experiments.RunBTLEJackBaseline(*seed)
			if err != nil {
				return err
			}
			inj, err := experiments.RunInjectaBLEMasterHijackComparison(*seed)
			if err != nil {
				return err
			}
			pre, err := experiments.RunGATTackerBaseline(*seed, false)
			if err != nil {
				return err
			}
			post, err := experiments.RunGATTackerBaseline(*seed, true)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, experiments.BaselineTable([]experiments.BaselineOutcome{jam, inj, pre, post}).Render())
			return nil
		},
		"ablations": func() error {
			for _, f := range []func(experiments.Options) (*experiments.Experiment, error){
				experiments.AblationCaptureModel,
				experiments.AblationAssumedSlaveSCA,
				experiments.AblationInjectionTiming,
				experiments.AblationAdaptiveGuard,
			} {
				exp, err := f(opts)
				if err != nil {
					return err
				}
				newline()
				fmt.Fprintln(stdout, exp.Table().Render())
			}
			t, err := experiments.HeuristicValidation(opts)
			if err != nil {
				return err
			}
			newline()
			fmt.Fprintln(stdout, t.Render())
			return nil
		},
	}

	if *runName == "list" {
		for _, name := range experimentOrder {
			fmt.Fprintln(stdout, name)
		}
		return 0
	}
	if *runName == "all" {
		for _, name := range experimentOrder {
			if err := runners[name](); err != nil {
				fmt.Fprintf(stderr, "experiments: %s: %v\n", name, err)
				return 1
			}
		}
		return 0
	}
	r, ok := runners[*runName]
	if !ok {
		fmt.Fprintf(stderr, "experiments: unknown experiment %q\navailable: %s\n",
			*runName, strings.Join(append([]string{"all", "list"}, experimentOrder...), " "))
		return 2
	}
	if err := r(); err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		return 1
	}
	return 0
}

// runIDS measures detection across the scenarios plus a clean control.
func runIDS(stdout io.Writer, seed uint64) error {
	t := &experiments.Table{
		Title:  "IDS detection study (§VIII): alerts per attack",
		Header: []string{"workload", "double-frame", "anchor-dev", "sched-split", "rogue-update", "jamming"},
	}
	row := func(name string, alerts map[ids.AlertKind]int) {
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", alerts[ids.AlertDoubleFrame]),
			fmt.Sprintf("%d", alerts[ids.AlertAnchorDeviation]),
			fmt.Sprintf("%d", alerts[ids.AlertScheduleSplit]),
			fmt.Sprintf("%d", alerts[ids.AlertRogueUpdate]),
			fmt.Sprintf("%d", alerts[ids.AlertJamming]),
		})
	}
	for _, sc := range []struct {
		name string
		run  func(string, uint64, bool) (experiments.ScenarioOutcome, error)
	}{
		{"scenario A", experiments.RunScenarioA},
		{"scenario B", experiments.RunScenarioB},
		{"scenario C", experiments.RunScenarioC},
		{"scenario D", experiments.RunScenarioD},
	} {
		out, err := sc.run("lightbulb", seed, true)
		if err != nil {
			return err
		}
		row(sc.name, out.IDSAlerts)
	}
	fmt.Fprintln(stdout, t.Render())
	return nil
}
