package main

import (
	"strings"
	"testing"
)

const goodExpo = `# TYPE serve_jobs_done counter
serve_jobs_done 6
# TYPE serve_queue_wait_ms histogram
serve_queue_wait_ms_bucket{le="1"} 2
serve_queue_wait_ms_bucket{le="+Inf"} 6
serve_queue_wait_ms_sum 12.5
serve_queue_wait_ms_count 6
`

func TestLintAcceptsValidExposition(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run(nil, strings.NewReader(goodExpo), &stdout, &stderr); code != 0 {
		t.Fatalf("valid exposition rejected: %s", stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "2 families") || !strings.Contains(out, "serve_queue_wait_ms") {
		t.Errorf("summary missing families: %s", out)
	}
}

func TestLintRejectsBrokenCumulativity(t *testing.T) {
	bad := `# TYPE h histogram
h_bucket{le="1"} 5
h_bucket{le="2"} 3
h_bucket{le="+Inf"} 5
h_sum 4
h_count 5
`
	var stdout, stderr strings.Builder
	if code := run(nil, strings.NewReader(bad), &stdout, &stderr); code == 0 {
		t.Fatal("non-cumulative histogram accepted")
	}
	if !strings.Contains(stderr.String(), "promlint:") {
		t.Errorf("stderr missing diagnostic: %s", stderr.String())
	}
}

func TestLintRejectsMissingFile(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"/nonexistent/expo.prom"}, strings.NewReader(""), &stdout, &stderr); code == 0 {
		t.Fatal("missing file accepted")
	}
}
