// Command promlint validates Prometheus text exposition read from stdin
// (or files) against the repo's strict parser: TYPE before samples, no
// duplicate series, non-negative counters, cumulative histogram buckets
// whose +Inf count matches _count. CI pipes curled /metrics output
// through it to prove the fleet exposition is well-formed.
//
// Usage:
//
//	curl -s http://host/metrics?format=prom | promlint
//	promlint dump1.prom dump2.prom
//
// Exit status 0 when every input parses; 1 on the first violation.
package main

import (
	"fmt"
	"io"
	"os"
	"sort"

	"injectable/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(argv []string, stdin io.Reader, stdout, stderr io.Writer) int {
	if len(argv) == 0 {
		return lint("<stdin>", stdin, stdout, stderr)
	}
	for _, path := range argv {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(stderr, "promlint:", err)
			return 1
		}
		code := lint(path, f, stdout, stderr)
		f.Close()
		if code != 0 {
			return code
		}
	}
	return 0
}

func lint(name string, r io.Reader, stdout, stderr io.Writer) int {
	data, err := io.ReadAll(r)
	if err != nil {
		fmt.Fprintln(stderr, "promlint:", err)
		return 1
	}
	fams, err := obs.ParsePromText(data)
	if err != nil {
		fmt.Fprintf(stderr, "promlint: %s: %v\n", name, err)
		return 1
	}
	names := make([]string, 0, len(fams))
	series := 0
	for fname, fam := range fams {
		names = append(names, fname)
		series += len(fam.Samples)
	}
	sort.Strings(names)
	fmt.Fprintf(stdout, "%s: OK — %d families, %d series\n", name, len(fams), series)
	for _, fname := range names {
		fmt.Fprintf(stdout, "  %-40s %s\n", fname, fams[fname].Type)
	}
	return 0
}
