package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, argv ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(argv, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunFlagError(t *testing.T) {
	if code, _, stderr := runCLI(t, "-nonsense"); code != 2 || !strings.Contains(stderr, "nonsense") {
		t.Fatalf("bad flag: exit %d stderr %q", code, stderr)
	}
}

func TestRunUnknownScenario(t *testing.T) {
	code, _, stderr := runCLI(t, "-scenario", "Z")
	if code != 1 {
		t.Fatalf("unknown scenario: exit %d, want 1", code)
	}
	if !strings.Contains(stderr, `unknown scenario "Z"`) {
		t.Fatalf("stderr does not name the scenario: %q", stderr)
	}
}

// TestRunScenarioASmoke runs the seeded scenario-A attack end to end
// through the CLI surface (seed 77 is a known-success seed, pinned by the
// experiments package's own tests).
func TestRunScenarioASmoke(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-scenario", "A", "-target", "lightbulb", "-seed", "77")
	if code != 0 {
		t.Fatalf("scenario A seed 77: exit %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "scenario A vs lightbulb: success=true") {
		t.Fatalf("unexpected report: %q", stdout)
	}
}

func TestRunScenarioAWithForensicsAndMetrics(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "m.jsonl")
	code, stdout, stderr := runCLI(t,
		"-scenario", "A", "-seed", "77", "-forensics", "-metrics", metrics)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "ledger records written") {
		t.Fatalf("metrics banner missing: %q", stdout)
	}
	b, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	if len(bytes.TrimSpace(b)) == 0 {
		t.Fatal("metrics file is empty")
	}
}
