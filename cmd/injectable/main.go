// Command injectable runs the InjectaBLE attack scenarios against a
// simulated topology and reports what happened.
//
// Usage:
//
//	injectable -scenario A|B|C|D|keyboard|encrypted -target lightbulb|keyfob|smartwatch [-seed N] [-ids]
//	           [-trace] [-pcap out.pcap] [-metrics out.jsonl] [-chrome-trace out.trace.json]
//	           [-forensics] [-pprof localhost:6060]
//
// Observability flags:
//
//	-trace         stream the full Link Layer trace to stderr
//	-pcap          capture the attacker-sniffed LL traffic as a pcap file
//	-metrics       write layer metrics + the injection forensics ledger as JSON lines
//	-chrome-trace  write a Chrome trace_event file (open in Perfetto or about:tracing)
//	-forensics     print the per-attempt injection forensics summary
//	-pprof         serve net/http/pprof on the given address for the run
//
// All outputs are deterministic per seed (the chrome trace and metrics
// files are byte-identical across runs with equal flags).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"injectable/internal/experiments"
	"injectable/internal/obs"
	"injectable/internal/pcap"
	"injectable/internal/sim"
)

// chromeTraceLimit bounds the in-memory event ring feeding -chrome-trace;
// drop-oldest keeps the tail of the run, which is where injection
// attempts live.
const chromeTraceLimit = 250000

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("injectable", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scenario := fs.String("scenario", "A", "attack scenario: A, B, C, D, keyboard or encrypted")
	target := fs.String("target", "lightbulb", "target device: lightbulb, keyfob or smartwatch")
	seed := fs.Uint64("seed", 1, "simulation seed (runs are deterministic per seed)")
	withIDS := fs.Bool("ids", false, "attach the passive IDS and report its alerts")
	trace := fs.Bool("trace", false, "stream the full Link Layer trace to stderr")
	pcapPath := fs.String("pcap", "", "write attacker-sniffed LL traffic to a pcap file")
	metricsPath := fs.String("metrics", "", "write metrics + injection forensics as JSON lines")
	chromePath := fs.String("chrome-trace", "", "write a Chrome trace_event file (Perfetto / about:tracing)")
	forensics := fs.Bool("forensics", false, "print the injection forensics summary")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address during the run")
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "injectable:", err)
		return 1
	}

	if *pprofAddr != "" {
		srv, err := obs.StartDebugServer(*pprofAddr)
		if err != nil {
			return fail(err)
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "pprof: http://%s/debug/pprof/\n", srv.Addr())
	}

	// Assemble the instrumentation the scenario worlds will carry.
	var inst experiments.Instrumentation
	var tracers sim.MultiTracer
	if *trace {
		tracers = append(tracers, sim.WriterTracer{W: stderr})
	}
	var rec *sim.RecordingTracer
	if *chromePath != "" {
		rec = sim.NewBoundedRecordingTracer(chromeTraceLimit)
		tracers = append(tracers, rec)
	}
	if len(tracers) > 0 {
		inst.Tracer = tracers
	}
	if *metricsPath != "" || *chromePath != "" || *forensics {
		inst.Obs = obs.NewHub()
	}
	var pcapFile *os.File
	if *pcapPath != "" {
		f, err := os.Create(*pcapPath)
		if err != nil {
			return fail(err)
		}
		pcapFile = f
		pw, err := pcap.NewWriter(f)
		if err != nil {
			return fail(err)
		}
		inst.Pcap = pw
	}

	code, err := runScenario(*scenario, *target, *seed, *withIDS, inst, stdout)
	if err != nil {
		return fail(err)
	}

	// Flush the observability outputs before surfacing the exit code.
	if pcapFile != nil {
		fmt.Fprintf(stdout, "pcap: %d packets (%d bytes) written to %s\n",
			inst.Pcap.Packets(), inst.Pcap.BytesWritten(), *pcapPath)
		if err := pcapFile.Close(); err != nil {
			return fail(err)
		}
	}
	if *metricsPath != "" {
		if err := writeFileWith(*metricsPath, func(f *os.File) error {
			return obs.WriteMetricsJSONL(f, inst.Obs.Snapshot(), inst.Obs.Led())
		}); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "metrics: %d ledger records written to %s\n",
			len(inst.Obs.Led().Records()), *metricsPath)
	}
	if *chromePath != "" {
		if err := writeFileWith(*chromePath, func(f *os.File) error {
			return obs.WriteChromeTrace(f, rec.Snapshot(), rec.Dropped(), inst.Obs.Led())
		}); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "chrome-trace: %d events (%d dropped) written to %s\n",
			len(rec.Events), rec.Dropped(), *chromePath)
	}
	if *forensics {
		if err := inst.Obs.Led().WriteSummary(stdout); err != nil {
			return fail(err)
		}
	}
	return code
}

// runScenario dispatches and reports one scenario, returning the exit code.
func runScenario(scenario, target string, seed uint64, withIDS bool, inst experiments.Instrumentation, stdout io.Writer) (int, error) {
	switch scenario {
	case "A", "B", "C", "D":
		run := map[string]func(string, uint64, bool, experiments.Instrumentation) (experiments.ScenarioOutcome, error){
			"A": experiments.RunScenarioAWith,
			"B": experiments.RunScenarioBWith,
			"C": experiments.RunScenarioCWith,
			"D": experiments.RunScenarioDWith,
		}[scenario]
		out, err := run(target, seed, withIDS, inst)
		if err != nil {
			return 0, err
		}
		fmt.Fprintf(stdout, "scenario %s vs %s: success=%t attempts=%d (%s)\n",
			scenario, out.Target, out.Success, out.Attempts, out.Detail)
		if withIDS {
			if len(out.IDSAlerts) == 0 {
				fmt.Fprintln(stdout, "IDS: no alerts")
			}
			for kind, n := range out.IDSAlerts {
				fmt.Fprintf(stdout, "IDS: %d × %s\n", n, kind)
			}
		}
		if !out.Success {
			return 1, nil
		}
	case "keyboard":
		out, err := experiments.RunScenarioKeystrokesWith(seed, withIDS, inst)
		if err != nil {
			return 0, err
		}
		fmt.Fprintf(stdout, "scenario keyboard: success=%t hijackAttempts=%d (%s)\n",
			out.Success, out.Attempts, out.Detail)
		if !out.Success {
			return 1, nil
		}
	case "encrypted":
		out, err := experiments.RunEncryptedInjectionWith(seed, inst)
		if err != nil {
			return 0, err
		}
		fmt.Fprintf(stdout, "encrypted countermeasure: paired=%t featureTriggered=%t dosDrop=%t\n",
			out.Paired, out.FeatureTriggered, out.ConnectionDropped)
	default:
		return 0, fmt.Errorf("unknown scenario %q", scenario)
	}
	return 0, nil
}

// writeFileWith creates path, runs write against it and closes it,
// reporting the first error.
func writeFileWith(path string, write func(f *os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
