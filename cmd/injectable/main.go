// Command injectable runs the InjectaBLE attack scenarios against a
// simulated topology and reports what happened.
//
// Usage:
//
//	injectable -scenario A|B|C|D|read|encrypted -target lightbulb|keyfob|smartwatch [-seed N] [-ids]
package main

import (
	"flag"
	"fmt"
	"os"

	"injectable/internal/experiments"
)

func main() {
	scenario := flag.String("scenario", "A", "attack scenario: A, B, C, D, keyboard or encrypted")
	target := flag.String("target", "lightbulb", "target device: lightbulb, keyfob or smartwatch")
	seed := flag.Uint64("seed", 1, "simulation seed (runs are deterministic per seed)")
	withIDS := flag.Bool("ids", false, "attach the passive IDS and report its alerts")
	flag.Parse()

	switch *scenario {
	case "A", "B", "C", "D":
		run := map[string]func(string, uint64, bool) (experiments.ScenarioOutcome, error){
			"A": experiments.RunScenarioA,
			"B": experiments.RunScenarioB,
			"C": experiments.RunScenarioC,
			"D": experiments.RunScenarioD,
		}[*scenario]
		out, err := run(*target, *seed, *withIDS)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("scenario %s vs %s: success=%t attempts=%d (%s)\n",
			*scenario, out.Target, out.Success, out.Attempts, out.Detail)
		if *withIDS {
			if len(out.IDSAlerts) == 0 {
				fmt.Println("IDS: no alerts")
			}
			for kind, n := range out.IDSAlerts {
				fmt.Printf("IDS: %d × %s\n", n, kind)
			}
		}
		if !out.Success {
			os.Exit(1)
		}
	case "keyboard":
		out, err := experiments.RunScenarioKeystrokes(*seed, *withIDS)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("scenario keyboard: success=%t hijackAttempts=%d (%s)\n",
			out.Success, out.Attempts, out.Detail)
		if !out.Success {
			os.Exit(1)
		}
	case "encrypted":
		out, err := experiments.RunEncryptedInjection(*seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("encrypted countermeasure: paired=%t featureTriggered=%t dosDrop=%t\n",
			out.Paired, out.FeatureTriggered, out.ConnectionDropped)
	default:
		fatal(fmt.Errorf("unknown scenario %q", *scenario))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "injectable:", err)
	os.Exit(1)
}
