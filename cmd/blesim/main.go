// Command blesim runs a plain BLE simulation — a lightbulb peripheral and
// a smartphone central exchanging GATT traffic — with an optional passive
// sniffer, and streams the Link Layer trace. It is the "is the substrate
// believable?" tool: connection setup, channel hopping, T_IFS responses,
// procedures, pairing, all visible.
//
// Usage:
//
//	blesim [-seed N] [-duration 2s] [-interval 36] [-sniff] [-pair] [-trace]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"injectable"

	"injectable/internal/ble/crc"
	attack "injectable/internal/injectable"
	"injectable/internal/link"
	"injectable/internal/pcap"
	"injectable/internal/sim"
)

func main() {
	seed := flag.Uint64("seed", 1, "simulation seed")
	duration := flag.String("duration", "2s", "virtual time to simulate (e.g. 500ms, 3s)")
	interval := flag.Uint("interval", 36, "connection Hop Interval (x1.25 ms)")
	sniff := flag.Bool("sniff", false, "attach a passive sniffer and print per-packet lines")
	pair := flag.Bool("pair", false, "pair and encrypt the connection")
	pcapPath := flag.String("pcap", "", "write sniffed LL traffic to a pcap file (implies -sniff)")
	trace := flag.Bool("trace", false, "stream the full Link Layer trace to stdout")
	flag.Parse()

	d, err := parseDuration(*duration)
	if err != nil {
		fatal(err)
	}

	var tracer sim.Tracer
	if *trace {
		tracer = sim.WriterTracer{W: os.Stdout}
	}
	w := injectable.NewWorld(injectable.WorldConfig{Seed: *seed, Tracer: tracer})
	bulb := injectable.NewLightbulb(w.NewDevice(injectable.DeviceConfig{
		Name: "bulb", Position: injectable.Position{X: 0},
	}))
	phone := injectable.NewSmartphone(w.NewDevice(injectable.DeviceConfig{
		Name: "phone", Position: injectable.Position{X: 2},
	}), injectable.SmartphoneConfig{
		ConnParams: injectable.ConnParams{Interval: uint16(*interval)},
	})

	var pw *pcap.Writer
	if *pcapPath != "" {
		f, err := os.Create(*pcapPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		pw, err = pcap.NewWriter(f)
		if err != nil {
			fatal(err)
		}
		*sniff = true
	}
	if *sniff {
		snifferDev := w.NewDevice(injectable.DeviceConfig{
			Name: "sniffer", Position: injectable.Position{X: 1, Y: 1},
		})
		sn := attack.NewSniffer(snifferDev.Stack)
		aa := uint32(0)
		sn.OnSync = func(st *injectable.ConnState) { aa = uint32(st.Params.AccessAddress) }
		sn.OnPacket = func(p attack.SniffedPacket) {
			dir := "M→S"
			if p.Role == link.RoleSlave {
				dir = "S→M"
			}
			fmt.Printf("%v ch%02d ev%05d %s %v crc=%t rssi=%v\n",
				p.StartAt, p.Channel, p.Event, dir, p.PDU, p.CRCOK, p.RSSI)
			if pw != nil {
				raw := p.PDU.Marshal()
				_ = pw.WritePacket(pcap.Packet{
					At:            p.StartAt,
					AccessAddress: aa,
					PDU:           raw,
					CRC:           crc.Compute(snifferCRCInit(sn), raw),
				})
			}
		}
		sn.Start()
	}

	bulb.Peripheral.StartAdvertising()
	phone.Connect(bulb.Peripheral.Device.Address())
	w.RunFor(d / 2)
	if !phone.Central.Connected() {
		fatal(fmt.Errorf("connection failed"))
	}
	if *pair {
		if err := phone.Central.Pair(); err != nil {
			fatal(err)
		}
	}
	w.RunFor(d / 2)

	fmt.Printf("\nsimulated %v: connected=%t encrypted=%t events=%d\n",
		d, phone.Central.Connected(),
		phone.Central.Conn() != nil && phone.Central.Conn().Encrypted(),
		eventCounter(phone.Central.Conn()))
	if pw != nil {
		fmt.Printf("pcap: %d packets (%d bytes) written to %s\n",
			pw.Packets(), pw.BytesWritten(), *pcapPath)
	}
}

// snifferCRCInit exposes the followed connection's CRCInit for re-encoding
// captured PDUs into pcap records.
func snifferCRCInit(sn *attack.Sniffer) uint32 {
	if st := sn.State(); st != nil {
		return st.Params.CRCInit
	}
	return 0
}

func eventCounter(c *injectable.Conn) uint16 {
	if c == nil {
		return 0
	}
	return c.EventCounter()
}

// parseDuration accepts "500ms", "3s", "90s".
func parseDuration(s string) (sim.Duration, error) {
	switch {
	case strings.HasSuffix(s, "ms"):
		v, err := strconv.Atoi(strings.TrimSuffix(s, "ms"))
		return sim.Milliseconds(int64(v)), err
	case strings.HasSuffix(s, "s"):
		v, err := strconv.Atoi(strings.TrimSuffix(s, "s"))
		return sim.Duration(v) * sim.Second, err
	default:
		return 0, fmt.Errorf("blesim: cannot parse duration %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "blesim:", err)
	os.Exit(1)
}
