package main

import (
	"testing"

	"injectable/internal/sim"
)

func TestParseDuration(t *testing.T) {
	cases := map[string]sim.Duration{
		"500ms": 500 * sim.Millisecond,
		"3s":    3 * sim.Second,
		"90s":   90 * sim.Second,
	}
	for in, want := range cases {
		got, err := parseDuration(in)
		if err != nil || got != want {
			t.Errorf("parseDuration(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "5", "5m", "xs"} {
		if _, err := parseDuration(bad); err == nil {
			t.Errorf("parseDuration(%q) accepted", bad)
		}
	}
}
