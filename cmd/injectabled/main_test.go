package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestUnknownSubcommand(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"frobnicate"}, &stdout, &stderr, nil); code == 0 {
		t.Fatal("unknown subcommand exited 0")
	}
	if !strings.Contains(stderr.String(), "frobnicate") {
		t.Errorf("stderr does not name the bad subcommand: %s", stderr.String())
	}
}

func TestNoArgsPrintsUsage(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run(nil, &stdout, &stderr, nil); code == 0 {
		t.Fatal("no-args exited 0")
	}
	if !strings.Contains(stderr.String(), "usage") {
		t.Errorf("stderr missing usage: %s", stderr.String())
	}
}

// TestServeSubmitDrain is the end-to-end daemon path: serve, submit the
// same scenario job twice (second must be a byte-identical cache hit),
// then SIGTERM and expect a clean drain.
func TestServeSubmitDrain(t *testing.T) {
	sig := make(chan os.Signal, 2)
	signalCh = func() <-chan os.Signal { return sig }

	ready := make(chan string, 1)
	exited := make(chan int, 1)
	var serveErr strings.Builder
	go func() {
		exited <- run([]string{"serve", "-addr", "127.0.0.1:0", "-trial-workers", "2"},
			&strings.Builder{}, &serveErr, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon never became ready: %s", serveErr.String())
	}
	base := "http://" + addr

	submit := func(out string) (int, string) {
		var stdout, stderr strings.Builder
		code := run([]string{"submit", "-addr", base,
			"-experiment", "scenarioA", "-target", "lightbulb",
			"-trials", "2", "-seed-base", "7", "-o", out},
			&stdout, &stderr, nil)
		return code, stderr.String()
	}
	dir := t.TempDir()
	first, second := filepath.Join(dir, "a.ndjson"), filepath.Join(dir, "b.ndjson")
	if code, msg := submit(first); code != 0 {
		t.Fatalf("first submit exited %d: %s", code, msg)
	}
	code, msg := submit(second)
	if code != 0 {
		t.Fatalf("second submit exited %d: %s", code, msg)
	}
	if !strings.Contains(msg, "cache: hit") {
		t.Errorf("second submit was not a cache hit: %s", msg)
	}
	a, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(second)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || !bytes.Equal(a, b) {
		t.Errorf("cache replay not byte-identical (%d vs %d bytes)", len(a), len(b))
	}

	sig <- syscall.SIGTERM
	select {
	case code := <-exited:
		if code != 0 {
			t.Fatalf("serve exited %d after SIGTERM: %s", code, serveErr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("serve did not exit after SIGTERM: %s", serveErr.String())
	}
}

// TestLoadgenSelf exercises the self-contained load mode and its table.
func TestLoadgenSelf(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"loadgen", "-self", "-clients", "4", "-jobs", "12",
		"-experiment", "scenarioA", "-target", "lightbulb", "-trials", "2",
		"-seed-base", "7", "-variants", "2"},
		&stdout, &stderr, nil)
	if code != 0 {
		t.Fatalf("loadgen exited %d: %s", code, stderr.String())
	}
	table := stdout.String()
	for _, want := range []string{"throughput jobs/s", "latency p50", "latency p99",
		"cache hit ratio", "errors"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	if !strings.Contains(table, fmt.Sprintf("%-22s %12s", "errors", "0")) {
		t.Errorf("loadgen reported errors:\n%s\n%s", table, stderr.String())
	}
}
