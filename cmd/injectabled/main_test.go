package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"injectable/internal/obs"
	"injectable/internal/serve"
)

func TestUnknownSubcommand(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"frobnicate"}, &stdout, &stderr, nil); code == 0 {
		t.Fatal("unknown subcommand exited 0")
	}
	if !strings.Contains(stderr.String(), "frobnicate") {
		t.Errorf("stderr does not name the bad subcommand: %s", stderr.String())
	}
}

func TestNoArgsPrintsUsage(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run(nil, &stdout, &stderr, nil); code == 0 {
		t.Fatal("no-args exited 0")
	}
	if !strings.Contains(stderr.String(), "usage") {
		t.Errorf("stderr missing usage: %s", stderr.String())
	}
}

// TestServeSubmitDrain is the end-to-end daemon path: serve, submit the
// same scenario job twice (second must be a byte-identical cache hit),
// then SIGTERM and expect a clean drain.
func TestServeSubmitDrain(t *testing.T) {
	sig := make(chan os.Signal, 2)
	signalCh = func() <-chan os.Signal { return sig }

	ready := make(chan string, 1)
	exited := make(chan int, 1)
	var serveErr strings.Builder
	go func() {
		exited <- run([]string{"serve", "-addr", "127.0.0.1:0", "-trial-workers", "2"},
			&strings.Builder{}, &serveErr, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon never became ready: %s", serveErr.String())
	}
	base := "http://" + addr

	submit := func(out string) (int, string) {
		var stdout, stderr strings.Builder
		code := run([]string{"submit", "-addr", base,
			"-experiment", "scenarioA", "-target", "lightbulb",
			"-trials", "2", "-seed-base", "7", "-o", out},
			&stdout, &stderr, nil)
		return code, stderr.String()
	}
	dir := t.TempDir()
	first, second := filepath.Join(dir, "a.ndjson"), filepath.Join(dir, "b.ndjson")
	if code, msg := submit(first); code != 0 {
		t.Fatalf("first submit exited %d: %s", code, msg)
	}
	code, msg := submit(second)
	if code != 0 {
		t.Fatalf("second submit exited %d: %s", code, msg)
	}
	if !strings.Contains(msg, "cache: hit") {
		t.Errorf("second submit was not a cache hit: %s", msg)
	}
	a, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(second)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || !bytes.Equal(a, b) {
		t.Errorf("cache replay not byte-identical (%d vs %d bytes)", len(a), len(b))
	}

	sig <- syscall.SIGTERM
	select {
	case code := <-exited:
		if code != 0 {
			t.Fatalf("serve exited %d after SIGTERM: %s", code, serveErr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("serve did not exit after SIGTERM: %s", serveErr.String())
	}
}

// TestLoadgenSelf exercises the self-contained load mode and its table.
func TestLoadgenSelf(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"loadgen", "-self", "-clients", "4", "-jobs", "12",
		"-experiment", "scenarioA", "-target", "lightbulb", "-trials", "2",
		"-seed-base", "7", "-variants", "2"},
		&stdout, &stderr, nil)
	if code != 0 {
		t.Fatalf("loadgen exited %d: %s", code, stderr.String())
	}
	table := stdout.String()
	for _, want := range []string{"throughput jobs/s", "latency p50", "latency p99",
		"cache hit ratio", "errors"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	if !strings.Contains(table, fmt.Sprintf("%-22s %12s", "errors", "0")) {
		t.Errorf("loadgen reported errors:\n%s\n%s", table, stderr.String())
	}
}

// TestWorkerAliasServes proves `worker` is the serve mode under a fabric
// name: it boots, answers /healthz, and drains on SIGTERM.
func TestWorkerAliasServes(t *testing.T) {
	sig := make(chan os.Signal, 2)
	signalCh = func() <-chan os.Signal { return sig }

	ready := make(chan string, 1)
	exited := make(chan int, 1)
	var serveErr strings.Builder
	go func() {
		exited <- run([]string{"worker", "-addr", "127.0.0.1:0", "-trial-workers", "2"},
			&strings.Builder{}, &serveErr, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("worker never became ready: %s", serveErr.String())
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("worker /healthz answered %d", resp.StatusCode)
	}
	sig <- syscall.SIGTERM
	select {
	case code := <-exited:
		if code != 0 {
			t.Fatalf("worker exited %d after SIGTERM: %s", code, serveErr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("worker did not exit after SIGTERM: %s", serveErr.String())
	}
}

// TestCoordinatorStatusSurface drives the coordinator CLI with the full
// observability plane on: fleet status endpoint live during -linger,
// strict-parseable Prometheus exposition, a pprof debug server, and a
// merged cross-process Chrome trace with three process lanes.
func TestCoordinatorStatusSurface(t *testing.T) {
	sig := make(chan os.Signal, 2)
	signalCh = func() <-chan os.Signal { return sig }

	workers := make([]string, 2)
	for i := range workers {
		srv := serve.NewServer(serve.Config{QueueCap: 32, JobWorkers: 1, TrialWorkers: 2, Hub: obs.NewHub()})
		hs := httptest.NewServer(srv.Handler())
		t.Cleanup(hs.Close)
		t.Cleanup(srv.Close)
		workers[i] = hs.URL
	}
	dir := t.TempDir()
	merged := filepath.Join(dir, "merged.ndjson")
	trace := filepath.Join(dir, "fleet-trace.json")

	ready := make(chan string, 1)
	exited := make(chan int, 1)
	var stderr strings.Builder
	go func() {
		exited <- run([]string{"coordinator",
			"-workers", strings.Join(workers, ","),
			"-experiment", "exp1", "-trials", "2",
			"-o", merged, "-trace", trace,
			"-status", "127.0.0.1:0", "-linger", "30s",
			"-scrape-interval", "100ms",
			"-log-level", "info", "-pprof", "127.0.0.1:0"},
			&strings.Builder{}, &stderr, ready)
	}()
	var statusAddr string
	select {
	case statusAddr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("status surface never came up: %s", stderr.String())
	}
	if statusAddr == "" {
		t.Fatalf("-status set but no listener address reported: %s", stderr.String())
	}
	base := "http://" + statusAddr

	// Wait for the lingering phase (campaign finished) by polling /v1/fleet.
	var fleet struct {
		Finished   bool    `json:"finished"`
		Err        string  `json:"error"`
		Progress   float64 `json:"progress"`
		ShardsDone int     `json:"shards_done"`
		Workers    []struct {
			State    string `json:"state"`
			ScrapeOK bool   `json:"scrape_ok"`
		} `json:"workers"`
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/fleet")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&fleet)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if fleet.Finished || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !fleet.Finished || fleet.Err != "" || fleet.Progress != 1 || fleet.ShardsDone != 6 {
		t.Fatalf("fleet status after run: %+v\nstderr: %s", fleet, stderr.String())
	}
	if len(fleet.Workers) != 2 {
		t.Fatalf("fleet lists %d workers, want 2", len(fleet.Workers))
	}

	// The fleet exposition must pass the strict parser.
	resp, err := http.Get(base + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	expo, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if _, err := obs.ParsePromText(expo); err != nil {
		t.Fatalf("fleet exposition failed strict parse: %v", err)
	}
	if !bytes.Contains(expo, []byte("serve_jobs_done")) {
		t.Error("fleet exposition missing worker-side serve_jobs_done")
	}

	// Signal out of the linger and collect the exit.
	sig <- syscall.SIGTERM
	select {
	case code := <-exited:
		if code != 0 {
			t.Fatalf("coordinator exited %d: %s", code, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("coordinator did not exit: %s", stderr.String())
	}

	// The merged Chrome trace holds coordinator + 2 worker lanes.
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			PID  int               `json:"pid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatal(err)
	}
	lanes := map[int]bool{}
	spans := map[int]int{}
	for _, e := range tf.TraceEvents {
		if e.Ph == "M" {
			if e.Name == "process_name" {
				lanes[e.PID] = true
			}
			continue
		}
		spans[e.PID]++
	}
	if len(lanes) != 3 {
		t.Fatalf("trace has %d process lanes, want 3: %s", len(lanes), stderr.String())
	}
	populated := 0
	for pid := range lanes {
		if spans[pid] > 0 {
			populated++
		}
	}
	if populated < 3 {
		t.Fatalf("only %d of 3 trace lanes carry spans (per-pid %v)", populated, spans)
	}

	if !strings.Contains(stderr.String(), "pprof on http://") {
		t.Errorf("stderr missing pprof announcement: %s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "campaign merged") {
		t.Errorf("stderr missing structured campaign merged event: %s", stderr.String())
	}
}

// TestCoordinatorMergeAndResume drives the coordinator CLI against two
// in-process workers: the merged stream must be byte-identical to an
// unsharded submit of the same spec, and a rerun over the same journal
// must resume every shard (dispatched=0 in the summary line).
func TestCoordinatorMergeAndResume(t *testing.T) {
	workers := make([]string, 2)
	for i := range workers {
		srv := serve.NewServer(serve.Config{QueueCap: 32, JobWorkers: 1, TrialWorkers: 2})
		hs := httptest.NewServer(srv.Handler())
		t.Cleanup(hs.Close)
		t.Cleanup(srv.Close)
		workers[i] = hs.URL
	}
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.ndjson")
	merged := filepath.Join(dir, "merged.ndjson")
	journal := filepath.Join(dir, "shards.journal")

	var stdout, stderr strings.Builder
	if code := run([]string{"submit", "-addr", workers[0],
		"-experiment", "exp1", "-trials", "2", "-o", ref}, &stdout, &stderr, nil); code != 0 {
		t.Fatalf("reference submit exited %d: %s", code, stderr.String())
	}

	coord := func(out string) string {
		var stdout, stderr strings.Builder
		code := run([]string{"coordinator",
			"-workers", strings.Join(workers, ","),
			"-journal", journal, "-o", out,
			"-experiment", "exp1", "-trials", "2"}, &stdout, &stderr, nil)
		if code != 0 {
			t.Fatalf("coordinator exited %d: %s", code, stderr.String())
		}
		return stderr.String()
	}

	msg := coord(merged)
	if !strings.Contains(msg, "shards=6 resumed=0 dispatched=6") {
		t.Fatalf("first run summary: %s", msg)
	}
	want, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 || !bytes.Equal(got, want) {
		t.Fatalf("merged stream (%d bytes) differs from unsharded submit (%d bytes)", len(got), len(want))
	}

	rerun := filepath.Join(dir, "rerun.ndjson")
	msg = coord(rerun)
	if !strings.Contains(msg, "shards=6 resumed=6 dispatched=0 retried=0") {
		t.Fatalf("resumed run summary: %s", msg)
	}
	got2, err := os.ReadFile(rerun)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, want) {
		t.Fatal("resumed stream differs from unsharded submit")
	}
}
