package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"injectable/internal/serve"
)

func TestUnknownSubcommand(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"frobnicate"}, &stdout, &stderr, nil); code == 0 {
		t.Fatal("unknown subcommand exited 0")
	}
	if !strings.Contains(stderr.String(), "frobnicate") {
		t.Errorf("stderr does not name the bad subcommand: %s", stderr.String())
	}
}

func TestNoArgsPrintsUsage(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run(nil, &stdout, &stderr, nil); code == 0 {
		t.Fatal("no-args exited 0")
	}
	if !strings.Contains(stderr.String(), "usage") {
		t.Errorf("stderr missing usage: %s", stderr.String())
	}
}

// TestServeSubmitDrain is the end-to-end daemon path: serve, submit the
// same scenario job twice (second must be a byte-identical cache hit),
// then SIGTERM and expect a clean drain.
func TestServeSubmitDrain(t *testing.T) {
	sig := make(chan os.Signal, 2)
	signalCh = func() <-chan os.Signal { return sig }

	ready := make(chan string, 1)
	exited := make(chan int, 1)
	var serveErr strings.Builder
	go func() {
		exited <- run([]string{"serve", "-addr", "127.0.0.1:0", "-trial-workers", "2"},
			&strings.Builder{}, &serveErr, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon never became ready: %s", serveErr.String())
	}
	base := "http://" + addr

	submit := func(out string) (int, string) {
		var stdout, stderr strings.Builder
		code := run([]string{"submit", "-addr", base,
			"-experiment", "scenarioA", "-target", "lightbulb",
			"-trials", "2", "-seed-base", "7", "-o", out},
			&stdout, &stderr, nil)
		return code, stderr.String()
	}
	dir := t.TempDir()
	first, second := filepath.Join(dir, "a.ndjson"), filepath.Join(dir, "b.ndjson")
	if code, msg := submit(first); code != 0 {
		t.Fatalf("first submit exited %d: %s", code, msg)
	}
	code, msg := submit(second)
	if code != 0 {
		t.Fatalf("second submit exited %d: %s", code, msg)
	}
	if !strings.Contains(msg, "cache: hit") {
		t.Errorf("second submit was not a cache hit: %s", msg)
	}
	a, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(second)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || !bytes.Equal(a, b) {
		t.Errorf("cache replay not byte-identical (%d vs %d bytes)", len(a), len(b))
	}

	sig <- syscall.SIGTERM
	select {
	case code := <-exited:
		if code != 0 {
			t.Fatalf("serve exited %d after SIGTERM: %s", code, serveErr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("serve did not exit after SIGTERM: %s", serveErr.String())
	}
}

// TestLoadgenSelf exercises the self-contained load mode and its table.
func TestLoadgenSelf(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"loadgen", "-self", "-clients", "4", "-jobs", "12",
		"-experiment", "scenarioA", "-target", "lightbulb", "-trials", "2",
		"-seed-base", "7", "-variants", "2"},
		&stdout, &stderr, nil)
	if code != 0 {
		t.Fatalf("loadgen exited %d: %s", code, stderr.String())
	}
	table := stdout.String()
	for _, want := range []string{"throughput jobs/s", "latency p50", "latency p99",
		"cache hit ratio", "errors"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	if !strings.Contains(table, fmt.Sprintf("%-22s %12s", "errors", "0")) {
		t.Errorf("loadgen reported errors:\n%s\n%s", table, stderr.String())
	}
}

// TestWorkerAliasServes proves `worker` is the serve mode under a fabric
// name: it boots, answers /healthz, and drains on SIGTERM.
func TestWorkerAliasServes(t *testing.T) {
	sig := make(chan os.Signal, 2)
	signalCh = func() <-chan os.Signal { return sig }

	ready := make(chan string, 1)
	exited := make(chan int, 1)
	var serveErr strings.Builder
	go func() {
		exited <- run([]string{"worker", "-addr", "127.0.0.1:0", "-trial-workers", "2"},
			&strings.Builder{}, &serveErr, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("worker never became ready: %s", serveErr.String())
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("worker /healthz answered %d", resp.StatusCode)
	}
	sig <- syscall.SIGTERM
	select {
	case code := <-exited:
		if code != 0 {
			t.Fatalf("worker exited %d after SIGTERM: %s", code, serveErr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("worker did not exit after SIGTERM: %s", serveErr.String())
	}
}

// TestCoordinatorMergeAndResume drives the coordinator CLI against two
// in-process workers: the merged stream must be byte-identical to an
// unsharded submit of the same spec, and a rerun over the same journal
// must resume every shard (dispatched=0 in the summary line).
func TestCoordinatorMergeAndResume(t *testing.T) {
	workers := make([]string, 2)
	for i := range workers {
		srv := serve.NewServer(serve.Config{QueueCap: 32, JobWorkers: 1, TrialWorkers: 2})
		hs := httptest.NewServer(srv.Handler())
		t.Cleanup(hs.Close)
		t.Cleanup(srv.Close)
		workers[i] = hs.URL
	}
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.ndjson")
	merged := filepath.Join(dir, "merged.ndjson")
	journal := filepath.Join(dir, "shards.journal")

	var stdout, stderr strings.Builder
	if code := run([]string{"submit", "-addr", workers[0],
		"-experiment", "exp1", "-trials", "2", "-o", ref}, &stdout, &stderr, nil); code != 0 {
		t.Fatalf("reference submit exited %d: %s", code, stderr.String())
	}

	coord := func(out string) string {
		var stdout, stderr strings.Builder
		code := run([]string{"coordinator",
			"-workers", strings.Join(workers, ","),
			"-journal", journal, "-o", out,
			"-experiment", "exp1", "-trials", "2"}, &stdout, &stderr, nil)
		if code != 0 {
			t.Fatalf("coordinator exited %d: %s", code, stderr.String())
		}
		return stderr.String()
	}

	msg := coord(merged)
	if !strings.Contains(msg, "shards=6 resumed=0 dispatched=6") {
		t.Fatalf("first run summary: %s", msg)
	}
	want, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 || !bytes.Equal(got, want) {
		t.Fatalf("merged stream (%d bytes) differs from unsharded submit (%d bytes)", len(got), len(want))
	}

	rerun := filepath.Join(dir, "rerun.ndjson")
	msg = coord(rerun)
	if !strings.Contains(msg, "shards=6 resumed=6 dispatched=0 retried=0") {
		t.Fatalf("resumed run summary: %s", msg)
	}
	got2, err := os.ReadFile(rerun)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, want) {
		t.Fatal("resumed stream differs from unsharded submit")
	}
}
