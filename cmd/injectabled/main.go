// Command injectabled is the campaign-as-a-service daemon: it serves the
// simulation study catalog (Fig. 9 sweeps, design ablations, attack
// scenarios) as HTTP jobs with admission control, deduplication and
// deterministic streaming results.
//
// Usage:
//
//	injectabled serve       [-addr host:port] [-queue-cap n] [-job-workers n] ...
//	injectabled worker      (alias for serve: one node of a campaign fabric)
//	injectabled submit      [-addr url] -experiment name [-target t] [-trials n] ...
//	injectabled coordinator -workers url,url,... -experiment name [-shards n] [-journal file] ...
//	injectabled loadgen     [-addr url | -self] [-clients n] [-jobs n] ...
//
// serve runs until SIGINT/SIGTERM, then drains: accepted jobs finish,
// new submissions are rejected with 503. A second signal cancels the
// remaining jobs and exits immediately.
//
// coordinator shards one sweep across a fleet of worker daemons and
// merges their streams into a single NDJSON campaign byte-identical to a
// single-process run. With -journal, completed shards are checkpointed so
// a rerun after a crash resumes without recomputing them.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"injectable/internal/fabric"
	"injectable/internal/obs"
	"injectable/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run dispatches a subcommand. ready, when non-nil, receives the serve
// listener's address once it is accepting connections (used by tests;
// nil in production).
func run(argv []string, stdout, stderr io.Writer, ready chan<- string) int {
	if len(argv) == 0 {
		usage(stderr)
		return 2
	}
	switch argv[0] {
	case "serve", "worker":
		return runServe(argv[1:], stdout, stderr, ready)
	case "submit":
		return runSubmit(argv[1:], stdout, stderr)
	case "coordinator":
		return runCoordinator(argv[1:], stdout, stderr)
	case "loadgen":
		return runLoadgen(argv[1:], stdout, stderr)
	case "-h", "-help", "--help", "help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "injectabled: unknown subcommand %q\n", argv[0])
		usage(stderr)
		return 2
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  injectabled serve       [-addr host:port] [-queue-cap n] [-job-workers n] [-trial-workers n] [-cache-entries n] [-drain-timeout d]
  injectabled worker      (alias for serve)
  injectabled submit      [-addr url] -experiment name [-target t] [-trials n] [-seed-base n] [-priority n] [-timeout-ms n] [-o file]
  injectabled coordinator -workers url,url,... -experiment name [-shards n] [-journal file] [-max-attempts n] [-o file]
  injectabled loadgen     [-addr url | -self] [-clients n] [-jobs n] [-experiment name] [-target t] [-trials n] [-variants n]
`)
}

// signalCh is replaced by tests to inject shutdown signals.
var signalCh = func() <-chan os.Signal {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	return ch
}

func runServe(argv []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("injectabled serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8077", "listen address")
	queueCap := fs.Int("queue-cap", 64, "admission queue capacity (full queue answers 429)")
	jobWorkers := fs.Int("job-workers", 2, "concurrently executing jobs")
	trialWorkers := fs.Int("trial-workers", 0, "campaign workers per job (0 = all cores)")
	cacheEntries := fs.Int("cache-entries", 256, "completed-result LRU size")
	retryAfter := fs.Duration("retry-after", 2*time.Second, "Retry-After hint on 429/503")
	jobTimeout := fs.Duration("job-timeout", 5*time.Minute, "default per-job deadline")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Minute, "max wait for accepted jobs on shutdown")
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	hub := obs.NewHub()
	srv := serve.NewServer(serve.Config{
		Hub:            hub,
		QueueCap:       *queueCap,
		JobWorkers:     *jobWorkers,
		TrialWorkers:   *trialWorkers,
		CacheEntries:   *cacheEntries,
		RetryAfter:     *retryAfter,
		DefaultTimeout: *jobTimeout,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "injectabled:", err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	fmt.Fprintf(stderr, "injectabled: serving on http://%s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	sig := signalCh()
	select {
	case err := <-errCh:
		fmt.Fprintln(stderr, "injectabled:", err)
		return 1
	case s := <-sig:
		fmt.Fprintf(stderr, "injectabled: %v — draining (finishing accepted jobs, rejecting new)\n", s)
	}

	// Drain: finish accepted jobs while /readyz reports 503. A second
	// signal — or the drain timeout — cancels what is left.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		<-sig
		fmt.Fprintln(stderr, "injectabled: second signal — canceling remaining jobs")
		cancel()
	}()
	code := 0
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintln(stderr, "injectabled: drain aborted:", err)
		srv.Close()
		code = 1
	}
	shutdownCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	httpSrv.Shutdown(shutdownCtx)
	fmt.Fprintln(stderr, "injectabled: bye")
	return code
}

// specFlags registers the job-spec flags shared by submit and loadgen.
func specFlags(fs *flag.FlagSet) func() serve.JobSpec {
	experiment := fs.String("experiment", "", "experiment or scenario name (see GET /v1/experiments)")
	target := fs.String("target", "", "scenario target device")
	trials := fs.Int("trials", 0, "trials per point (0 = the paper's 25)")
	seedBase := fs.Uint64("seed-base", 0, "base seed (0 = 1000)")
	priority := fs.Int("priority", 0, "admission priority 0-9 (higher runs first)")
	timeoutMS := fs.Int64("timeout-ms", 0, "job deadline in ms (0 = server default)")
	return func() serve.JobSpec {
		return serve.JobSpec{
			Experiment: *experiment,
			Target:     *target,
			Trials:     *trials,
			SeedBase:   *seedBase,
			Priority:   *priority,
			TimeoutMS:  *timeoutMS,
		}
	}
}

func runSubmit(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("injectabled submit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "http://127.0.0.1:8077", "daemon base URL")
	out := fs.String("o", "", "write the NDJSON stream to this file (default stdout)")
	spec := specFlags(fs)
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	client := &serve.Client{Base: *addr}
	res, err := client.Run(context.Background(), spec())
	if err != nil {
		fmt.Fprintln(stderr, "injectabled:", err)
		var apiErr *serve.APIError
		if errors.As(err, &apiErr) && (apiErr.Status == 429 || apiErr.Status == 503) {
			return 3 // distinguishable "try again later"
		}
		return 1
	}
	fmt.Fprintf(stderr, "injectabled: job %s cache: %s\n", res.JobID, res.Cache)
	w := io.Writer(stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "injectabled:", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if _, err := w.Write(res.Body); err != nil {
		fmt.Fprintln(stderr, "injectabled:", err)
		return 1
	}
	return 0
}

// runCoordinator shards one campaign across a worker fleet and merges
// the results. The summary line on stderr is stable, machine-assertable
// output: the CI smoke job greps it to prove a resumed campaign
// dispatched zero shards.
func runCoordinator(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("injectabled coordinator", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workersFlag := fs.String("workers", "", "comma-separated worker daemon base URLs (required)")
	shards := fs.Int("shards", 0, "max shards (0 = one per sweep point)")
	journalPath := fs.String("journal", "", "shard checkpoint file; reruns resume completed shards from it")
	out := fs.String("o", "", "write the merged NDJSON stream to this file (default stdout)")
	maxAttempts := fs.Int("max-attempts", 3, "dispatch attempts per shard before the campaign fails")
	workerFailures := fs.Int("worker-failures", 3, "consecutive failures before a worker is abandoned")
	spec := specFlags(fs)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	var workers []string
	for _, w := range strings.Split(*workersFlag, ",") {
		if w = strings.TrimSpace(w); w != "" {
			workers = append(workers, w)
		}
	}
	if len(workers) == 0 {
		fmt.Fprintln(stderr, "injectabled: coordinator needs -workers url[,url...]")
		return 2
	}

	plan, err := fabric.PlanShards(serve.DefaultRegistry(), spec(), *shards)
	if err != nil {
		fmt.Fprintln(stderr, "injectabled:", err)
		return 2
	}

	cfg := fabric.Config{
		Workers:        workers,
		Retry:          serve.Retry{Max: 4, Base: 250 * time.Millisecond, Cap: 5 * time.Second},
		MaxAttempts:    *maxAttempts,
		WorkerFailures: *workerFailures,
		Hub:            obs.NewHub(),
	}
	if *journalPath != "" {
		j, recs, err := fabric.OpenJournal(*journalPath)
		if err != nil {
			fmt.Fprintln(stderr, "injectabled:", err)
			return 1
		}
		defer j.Close()
		cfg.Journal = j
		cfg.Resume = recs
	}

	w := io.Writer(stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "injectabled:", err)
			return 1
		}
		defer f.Close()
		w = f
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	rep, err := fabric.Run(ctx, cfg, plan, w)
	if rep != nil {
		fmt.Fprintf(stderr, "fabric: shards=%d resumed=%d dispatched=%d retried=%d workers_lost=%d trials=%d ok=%d failed=%d bytes=%d\n",
			rep.Shards, rep.Resumed, rep.Dispatched, rep.Retried, rep.WorkersLost, rep.Trials, rep.OK, rep.Failed, rep.Bytes)
	}
	if err != nil {
		fmt.Fprintln(stderr, "injectabled:", err)
		return 1
	}
	return 0
}

func runLoadgen(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("injectabled loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "http://127.0.0.1:8077", "daemon base URL")
	self := fs.Bool("self", false, "run against a fresh in-process daemon instead of -addr")
	clients := fs.Int("clients", 8, "concurrent submitters")
	jobs := fs.Int("jobs", 64, "total submissions")
	variants := fs.Int("variants", 0, "distinct seed_base variants of the spec (0 = default mix)")
	spec := specFlags(fs)
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	base := *addr
	if *self {
		srv := serve.NewServer(serve.Config{Hub: obs.NewHub()})
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(stderr, "injectabled:", err)
			return 1
		}
		httpSrv := &http.Server{Handler: srv.Handler()}
		go httpSrv.Serve(ln)
		defer httpSrv.Close()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(stderr, "loadgen: in-process daemon on %s\n", base)
	}

	cfg := serve.LoadgenConfig{Clients: *clients, Jobs: *jobs}
	if s := spec(); s.Experiment != "" {
		if *variants <= 0 {
			*variants = 1
		}
		s = s.Normalize()
		for v := 0; v < *variants; v++ {
			vs := s
			vs.SeedBase = s.SeedBase + uint64(v)*1_000_000
			cfg.Specs = append(cfg.Specs, vs)
		}
	}
	rep, err := serve.Loadgen(context.Background(), &serve.Client{Base: base}, cfg, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "injectabled:", err)
		return 1
	}
	fmt.Fprint(stdout, rep.Table())
	return 0
}
