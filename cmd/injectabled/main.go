// Command injectabled is the campaign-as-a-service daemon: it serves the
// simulation study catalog (Fig. 9 sweeps, design ablations, attack
// scenarios) as HTTP jobs with admission control, deduplication and
// deterministic streaming results.
//
// Usage:
//
//	injectabled serve       [-addr host:port] [-queue-cap n] [-job-workers n] ...
//	injectabled worker      (alias for serve: one node of a campaign fabric)
//	injectabled submit      [-addr url] -experiment name | -spec file.json [-trials n] [-format f] ...
//	injectabled coordinator -workers url,url,... -experiment name | -spec file.json [-shards n] [-journal file] [-format f] ...
//	injectabled transcode   [-i file] [-o file] [-to ndjson|binary]
//	injectabled loadgen     [-addr url | -self] [-clients n] [-jobs n] ...
//
// serve runs until SIGINT/SIGTERM, then drains: accepted jobs finish,
// new submissions are rejected with 503. A second signal cancels the
// remaining jobs and exits immediately.
//
// coordinator shards one sweep across a fleet of worker daemons and
// merges their streams into a single NDJSON campaign byte-identical to a
// single-process run. With -journal, completed shards are checkpointed so
// a rerun after a crash resumes without recomputing them.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"injectable/internal/campaign"
	"injectable/internal/fabric"
	"injectable/internal/obs"
	"injectable/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run dispatches a subcommand. ready, when non-nil, receives the serve
// listener's address once it is accepting connections (used by tests;
// nil in production).
func run(argv []string, stdout, stderr io.Writer, ready chan<- string) int {
	if len(argv) == 0 {
		usage(stderr)
		return 2
	}
	switch argv[0] {
	case "serve", "worker":
		return runServe(argv[1:], stdout, stderr, ready)
	case "submit":
		return runSubmit(argv[1:], stdout, stderr)
	case "coordinator":
		return runCoordinator(argv[1:], stdout, stderr, ready)
	case "transcode":
		return runTranscode(argv[1:], stdout, stderr)
	case "loadgen":
		return runLoadgen(argv[1:], stdout, stderr)
	case "-h", "-help", "--help", "help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "injectabled: unknown subcommand %q\n", argv[0])
		usage(stderr)
		return 2
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  injectabled serve       [-addr host:port] [-queue-cap n] [-job-workers n] [-trial-workers n] [-cache-entries n] [-drain-timeout d] [-log-level l] [-pprof addr]
  injectabled worker      (alias for serve)
  injectabled submit      [-addr url] -experiment name | -spec file.json [-target t] [-trials n] [-seed-base n] [-priority n] [-timeout-ms n] [-format ndjson|binary] [-o file]
  injectabled coordinator -workers url,url,... -experiment name | -spec file.json [-shards n] [-journal file] [-max-attempts n] [-format ndjson|binary] [-o file]
                          [-status addr] [-linger d] [-trace file] [-scrape-interval d] [-log-level l] [-pprof addr]
  injectabled transcode   [-i file] [-o file] [-to ndjson|binary]   (losslessly convert a result stream; direction auto-detected)
  injectabled loadgen     [-addr url | -self] [-clients n] [-jobs n] [-experiment name] [-target t] [-trials n] [-variants n]
`)
}

// signalCh is replaced by tests to inject shutdown signals.
var signalCh = func() <-chan os.Signal {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	return ch
}

// obsFlags registers the shared observability flags (-log-level, -pprof)
// and returns a setup function that builds the logger and starts the
// optional pprof debug server. The returned cleanup is safe to call
// unconditionally.
func obsFlags(fs *flag.FlagSet) func(stderr io.Writer) (*slog.Logger, func(), error) {
	logLevel := fs.String("log-level", "", "structured log level: debug|info|warn|error (default: no structured logs)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof and /debug/runtime on this address")
	return func(stderr io.Writer) (*slog.Logger, func(), error) {
		lg := obs.NopLogger()
		if *logLevel != "" {
			level, err := obs.ParseLogLevel(*logLevel)
			if err != nil {
				return nil, func() {}, err
			}
			lg = obs.NewLogger(stderr, level)
		}
		cleanup := func() {}
		if *pprofAddr != "" {
			dbg, err := obs.StartDebugServer(*pprofAddr)
			if err != nil {
				return nil, cleanup, err
			}
			fmt.Fprintf(stderr, "injectabled: pprof on http://%s/debug/pprof/\n", dbg.Addr())
			cleanup = func() { dbg.Close() }
		}
		return lg, cleanup, nil
	}
}

func runServe(argv []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("injectabled serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8077", "listen address")
	queueCap := fs.Int("queue-cap", 64, "admission queue capacity (full queue answers 429)")
	jobWorkers := fs.Int("job-workers", 2, "concurrently executing jobs")
	trialWorkers := fs.Int("trial-workers", 0, "campaign workers per job (0 = all cores)")
	cacheEntries := fs.Int("cache-entries", 256, "completed-result LRU size")
	retryAfter := fs.Duration("retry-after", 2*time.Second, "Retry-After hint on 429/503")
	jobTimeout := fs.Duration("job-timeout", 5*time.Minute, "default per-job deadline")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Minute, "max wait for accepted jobs on shutdown")
	obsSetup := obsFlags(fs)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	lg, obsCleanup, err := obsSetup(stderr)
	if err != nil {
		fmt.Fprintln(stderr, "injectabled:", err)
		return 2
	}
	defer obsCleanup()

	hub := obs.NewHub()
	srv := serve.NewServer(serve.Config{
		Hub:            hub,
		QueueCap:       *queueCap,
		JobWorkers:     *jobWorkers,
		TrialWorkers:   *trialWorkers,
		CacheEntries:   *cacheEntries,
		RetryAfter:     *retryAfter,
		DefaultTimeout: *jobTimeout,
		Log:            lg,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "injectabled:", err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	fmt.Fprintf(stderr, "injectabled: serving on http://%s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	sig := signalCh()
	select {
	case err := <-errCh:
		fmt.Fprintln(stderr, "injectabled:", err)
		return 1
	case s := <-sig:
		fmt.Fprintf(stderr, "injectabled: %v — draining (finishing accepted jobs, rejecting new)\n", s)
	}

	// Drain: finish accepted jobs while /readyz reports 503. A second
	// signal — or the drain timeout — cancels what is left.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		<-sig
		fmt.Fprintln(stderr, "injectabled: second signal — canceling remaining jobs")
		cancel()
	}()
	code := 0
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintln(stderr, "injectabled: drain aborted:", err)
		srv.Close()
		code = 1
	}
	shutdownCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	httpSrv.Shutdown(shutdownCtx)
	fmt.Fprintln(stderr, "injectabled: bye")
	return code
}

// specFlags registers the job-spec flags shared by submit, coordinator
// and loadgen. -spec embeds a declarative scenario file
// (internal/scenario) in place of a catalog experiment name; the file is
// validated and canonicalized client-side, so the job's dedup key is the
// one every daemon would compute.
func specFlags(fs *flag.FlagSet) func() (serve.JobSpec, error) {
	experiment := fs.String("experiment", "", "experiment or scenario name (see GET /v1/experiments)")
	target := fs.String("target", "", "scenario target device")
	specFile := fs.String("spec", "", "declarative scenario spec file (JSON); replaces -experiment/-target")
	trials := fs.Int("trials", 0, "trials per point (0 = the paper's 25)")
	seedBase := fs.Uint64("seed-base", 0, "base seed (0 = 1000)")
	priority := fs.Int("priority", 0, "admission priority 0-9 (higher runs first)")
	timeoutMS := fs.Int64("timeout-ms", 0, "job deadline in ms (0 = server default)")
	warmup := fs.String("warmup", "", `sweep trial strategy: "" (per-trial worlds), "shared" (fork a warm snapshot) or "shared-fresh" (fork reference)`)
	return func() (serve.JobSpec, error) {
		spec := serve.JobSpec{
			Experiment: *experiment,
			Target:     *target,
			Trials:     *trials,
			SeedBase:   *seedBase,
			Priority:   *priority,
			TimeoutMS:  *timeoutMS,
			Warmup:     *warmup,
		}
		if *specFile == "" {
			return spec, nil
		}
		if *experiment != "" || *target != "" {
			return serve.JobSpec{}, errors.New("-spec replaces -experiment/-target; drop them")
		}
		raw, err := os.ReadFile(*specFile)
		if err != nil {
			return serve.JobSpec{}, err
		}
		return serve.ScenarioJobSpec(raw, spec)
	}
}

func runSubmit(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("injectabled submit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "http://127.0.0.1:8077", "daemon base URL")
	out := fs.String("o", "", "write the result stream to this file (default stdout)")
	format := fs.String("format", serve.FormatNDJSON, "result stream format: ndjson|binary")
	spec := specFlags(fs)
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	job, err := spec()
	if err != nil {
		fmt.Fprintln(stderr, "injectabled:", err)
		return 2
	}
	client := &serve.Client{Base: *addr}
	var res *serve.RunResult
	switch *format {
	case serve.FormatNDJSON:
		res, err = client.Run(context.Background(), job)
	case serve.FormatBinary:
		res, err = client.RunBinary(context.Background(), job)
	default:
		fmt.Fprintf(stderr, "injectabled: unknown -format %q (want ndjson or binary)\n", *format)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "injectabled:", err)
		var apiErr *serve.APIError
		if errors.As(err, &apiErr) && (apiErr.Status == 429 || apiErr.Status == 503) {
			return 3 // distinguishable "try again later"
		}
		return 1
	}
	fmt.Fprintf(stderr, "injectabled: job %s cache: %s\n", res.JobID, res.Cache)
	w := io.Writer(stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "injectabled:", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if _, err := w.Write(res.Body); err != nil {
		fmt.Fprintln(stderr, "injectabled:", err)
		return 1
	}
	return 0
}

// runCoordinator shards one campaign across a worker fleet and merges
// the results. The summary line on stderr is stable, machine-assertable
// output: the CI smoke job greps it to prove a resumed campaign
// dispatched zero shards.
//
// With -status, a fleet observability surface (merged /metrics,
// /v1/fleet, /v1/spans, /v1/trace) serves throughout the run and for
// -linger afterwards so scrapers can collect the final state; ready
// (tests) receives the status listener's address, or "" when -status is
// off. With -trace, the merged cross-process Chrome trace is written
// after the run.
func runCoordinator(argv []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("injectabled coordinator", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workersFlag := fs.String("workers", "", "comma-separated worker daemon base URLs (required)")
	shards := fs.Int("shards", 0, "max shards (0 = one per sweep point)")
	journalPath := fs.String("journal", "", "shard checkpoint file; reruns resume completed shards from it")
	out := fs.String("o", "", "write the merged stream to this file (default stdout)")
	format := fs.String("format", serve.FormatNDJSON, "merged output format: ndjson|binary (shards travel binary either way)")
	maxAttempts := fs.Int("max-attempts", 3, "dispatch attempts per shard before the campaign fails")
	workerFailures := fs.Int("worker-failures", 3, "consecutive failures before a worker is abandoned")
	statusAddr := fs.String("status", "", "serve the fleet status surface (/metrics, /v1/fleet, /v1/trace) on this address")
	scrapeEvery := fs.Duration("scrape-interval", 2*time.Second, "worker metrics scrape period for the status surface")
	linger := fs.Duration("linger", 0, "keep the status surface up this long after the run (0 = exit immediately)")
	tracePath := fs.String("trace", "", "write the merged cross-process Chrome trace to this file after the run")
	obsSetup := obsFlags(fs)
	spec := specFlags(fs)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	var workers []string
	for _, w := range strings.Split(*workersFlag, ",") {
		if w = strings.TrimSpace(w); w != "" {
			workers = append(workers, w)
		}
	}
	if len(workers) == 0 {
		fmt.Fprintln(stderr, "injectabled: coordinator needs -workers url[,url...]")
		return 2
	}
	lg, obsCleanup, err := obsSetup(stderr)
	if err != nil {
		fmt.Fprintln(stderr, "injectabled:", err)
		return 2
	}
	defer obsCleanup()

	job, err := spec()
	if err != nil {
		fmt.Fprintln(stderr, "injectabled:", err)
		return 2
	}
	plan, err := fabric.PlanShards(serve.DefaultRegistry(), job, *shards)
	if err != nil {
		fmt.Fprintln(stderr, "injectabled:", err)
		return 2
	}

	hub := obs.NewHub()
	st := fabric.NewStatus()
	cfg := fabric.Config{
		Workers:        workers,
		Retry:          serve.Retry{Max: 4, Base: 250 * time.Millisecond, Cap: 5 * time.Second},
		MaxAttempts:    *maxAttempts,
		WorkerFailures: *workerFailures,
		Hub:            hub,
		Log:            lg,
		Status:         st,
		Format:         *format,
	}
	if *journalPath != "" {
		j, recs, err := fabric.OpenJournal(*journalPath)
		if err != nil {
			fmt.Fprintln(stderr, "injectabled:", err)
			return 1
		}
		defer j.Close()
		cfg.Journal = j
		cfg.Resume = recs
	}

	w := io.Writer(stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "injectabled:", err)
			return 1
		}
		defer f.Close()
		w = f
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sig := signalCh()
	go func() {
		select {
		case s := <-sig:
			fmt.Fprintf(stderr, "injectabled: %v — aborting campaign (journal retains finished shards)\n", s)
			cancel()
		case <-ctx.Done():
		}
	}()

	// The aggregator exists whenever either observability output was
	// requested; the HTTP surface only with -status.
	var agg *fabric.Aggregator
	if *statusAddr != "" || *tracePath != "" {
		agg = fabric.NewAggregator(fabric.AggregatorConfig{
			Workers:  workers,
			Interval: *scrapeEvery,
			Local:    hub,
			Status:   st,
			Log:      lg,
		})
	}
	var statusSrv *http.Server
	if *statusAddr != "" {
		ln, err := net.Listen("tcp", *statusAddr)
		if err != nil {
			fmt.Fprintln(stderr, "injectabled:", err)
			return 1
		}
		statusSrv = &http.Server{Handler: agg.Handler()}
		go statusSrv.Serve(ln)
		defer statusSrv.Close()
		fmt.Fprintf(stderr, "injectabled: fleet status on http://%s\n", ln.Addr())
		go agg.Run(ctx)
		if ready != nil {
			ready <- ln.Addr().String()
		}
	} else if ready != nil {
		ready <- ""
	}

	rep, err := fabric.Run(ctx, cfg, plan, w)
	if rep != nil {
		fmt.Fprintf(stderr, "fabric: shards=%d resumed=%d dispatched=%d retried=%d workers_lost=%d trials=%d ok=%d failed=%d bytes=%d\n",
			rep.Shards, rep.Resumed, rep.Dispatched, rep.Retried, rep.WorkersLost, rep.Trials, rep.OK, rep.Failed, rep.Bytes)
	}
	code := 0
	if err != nil {
		fmt.Fprintln(stderr, "injectabled:", err)
		code = 1
	}

	if agg != nil {
		// Final scrape so the surface (and the trace) reflects the
		// workers' post-campaign counters even between ticks.
		scrapeCtx, scrapeCancel := context.WithTimeout(context.Background(), 10*time.Second)
		agg.ScrapeOnce(scrapeCtx)
		if *tracePath != "" {
			if terr := writeFleetTrace(scrapeCtx, agg, *tracePath, plan.Key); terr != nil {
				fmt.Fprintln(stderr, "injectabled:", terr)
				if code == 0 {
					code = 1
				}
			} else {
				fmt.Fprintf(stderr, "injectabled: fleet trace written to %s\n", *tracePath)
			}
		}
		scrapeCancel()
	}

	if statusSrv != nil && *linger > 0 && code == 0 {
		fmt.Fprintf(stderr, "injectabled: lingering %v for scrapers (signal to exit)\n", *linger)
		select {
		case <-time.After(*linger):
		case <-sig:
		case <-ctx.Done():
		}
	}
	return code
}

// writeFleetTrace assembles and writes the merged Chrome trace file.
func writeFleetTrace(ctx context.Context, agg *fabric.Aggregator, path, trace string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := agg.FleetTrace(ctx, f, trace); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runTranscode losslessly converts a complete result stream between the
// NDJSON and binary trial-record formats. The source format is detected
// from the stream itself (binary opens with the "IBTR" magic); -to
// defaults to "the other one", so a bare `transcode` always flips the
// format. The CI equivalence job round-trips daemon output through this
// and requires cmp-level identity with the directly served stream.
func runTranscode(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("injectabled transcode", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("i", "", "input stream file (default stdin)")
	out := fs.String("o", "", "output file (default stdout)")
	to := fs.String("to", "", "target format: ndjson|binary (default: the opposite of the input)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	var data []byte
	var err error
	if *in != "" {
		data, err = os.ReadFile(*in)
	} else {
		data, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(stderr, "injectabled:", err)
		return 1
	}
	isBinary := bytes.HasPrefix(data, []byte("IBTR"))
	target := *to
	if target == "" {
		target = serve.FormatBinary
		if isBinary {
			target = serve.FormatNDJSON
		}
	}
	w := io.Writer(stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "injectabled:", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	switch {
	case target == serve.FormatNDJSON && isBinary:
		err = campaign.TranscodeBinaryToNDJSON(w, data)
	case target == serve.FormatBinary && !isBinary:
		err = campaign.TranscodeNDJSONToBinary(w, data)
	case target == serve.FormatNDJSON || target == serve.FormatBinary:
		_, err = w.Write(data) // already in the target format
	default:
		fmt.Fprintf(stderr, "injectabled: unknown -to %q (want ndjson or binary)\n", target)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "injectabled:", err)
		return 1
	}
	return 0
}

func runLoadgen(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("injectabled loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "http://127.0.0.1:8077", "daemon base URL")
	self := fs.Bool("self", false, "run against a fresh in-process daemon instead of -addr")
	clients := fs.Int("clients", 8, "concurrent submitters")
	jobs := fs.Int("jobs", 64, "total submissions")
	variants := fs.Int("variants", 0, "distinct seed_base variants of the spec (0 = default mix)")
	spec := specFlags(fs)
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	base := *addr
	if *self {
		srv := serve.NewServer(serve.Config{Hub: obs.NewHub()})
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(stderr, "injectabled:", err)
			return 1
		}
		httpSrv := &http.Server{Handler: srv.Handler()}
		go httpSrv.Serve(ln)
		defer httpSrv.Close()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(stderr, "loadgen: in-process daemon on %s\n", base)
	}

	s, err := spec()
	if err != nil {
		fmt.Fprintln(stderr, "injectabled:", err)
		return 2
	}
	cfg := serve.LoadgenConfig{Clients: *clients, Jobs: *jobs}
	if s.Experiment != "" {
		if *variants <= 0 {
			*variants = 1
		}
		s = s.Normalize()
		for v := 0; v < *variants; v++ {
			vs := s
			vs.SeedBase = s.SeedBase + uint64(v)*1_000_000
			cfg.Specs = append(cfg.Specs, vs)
		}
	}
	rep, err := serve.Loadgen(context.Background(), &serve.Client{Base: base}, cfg, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "injectabled:", err)
		return 1
	}
	fmt.Fprint(stdout, rep.Table())
	return 0
}
