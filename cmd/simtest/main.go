// Command simtest runs the cross-layer invariant swarm from the command
// line: randomized worlds for soak testing, single-seed reproduction, and
// seed shrinking.
//
//	simtest -worlds 500                 # swarm over seeds [1, 501)
//	simtest -seed 42                    # rerun one generated world
//	simtest -seed 42 -shrink            # ...and minimise it if it fails
//	simtest -seed 42 -base -p breakWidening=0.5   # explicit world
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"injectable/internal/simtest"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// paramFlags collects repeated -p key=value overrides.
type paramFlags []string

func (p *paramFlags) String() string { return strings.Join(*p, ",") }

func (p *paramFlags) Set(v string) error {
	*p = append(*p, v)
	return nil
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simtest", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed     = fs.Int64("seed", -1, "run a single world with this seed (default: swarm mode)")
		worlds   = fs.Int("worlds", 50, "swarm mode: number of consecutive seeds to run")
		seedBase = fs.Uint64("seed-base", 1, "swarm mode: first seed")
		parallel = fs.Int("parallel", 0, "worker count (0 = GOMAXPROCS); results are identical at any value")
		shrink   = fs.Bool("shrink", false, "on failure, minimise the world and print a repro command")
		fork     = fs.Bool("fork", false, "fork-equivalence mode: snapshot each world mid-run, replay it, and require identical timelines")
		base     = fs.Bool("base", false, "start from default parameters instead of generating from the seed")
		verbose  = fs.Bool("v", false, "print one line per world")
		overs    paramFlags
	)
	fs.Var(&overs, "p", "override a parameter (key=value, repeatable; run with an unknown key to list them)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "simtest: unexpected arguments: %v\n", fs.Args())
		return 2
	}

	mutate := func(p *simtest.Params) error {
		if *base {
			*p = simtest.DefaultParams()
		}
		for _, kv := range overs {
			key, value, ok := strings.Cut(kv, "=")
			if !ok {
				return fmt.Errorf("simtest: -p wants key=value, got %q", kv)
			}
			if err := p.Set(key, value); err != nil {
				return err
			}
		}
		return nil
	}

	if *seed >= 0 {
		return runOne(uint64(*seed), mutate, *shrink, *fork, stdout, stderr)
	}
	return runSwarm(*seedBase, *worlds, *parallel, mutate, *shrink, *fork, *verbose, stdout, stderr)
}

// runOne reruns a single world (optionally shrinking a failure).
func runOne(seed uint64, mutate func(*simtest.Params) error, shrink, fork bool, stdout, stderr io.Writer) int {
	p := simtest.Generate(seed)
	if err := mutate(&p); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	runWorld, shrinkWorld := simtest.RunWorld, simtest.Shrink
	if fork {
		runWorld, shrinkWorld = simtest.RunWorldFork, simtest.ShrinkFork
	}
	res, err := runWorld(seed, p)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	printWorld(stdout, res)
	if !res.Failed() {
		if fork {
			fmt.Fprintf(stdout, "seed %d: all invariants hold, fork replay identical\n", seed)
		} else {
			fmt.Fprintf(stdout, "seed %d: all invariants hold\n", seed)
		}
		return 0
	}
	for _, v := range res.Violations {
		fmt.Fprintf(stdout, "  %v\n", v)
	}
	if res.Truncated > 0 {
		fmt.Fprintf(stdout, "  ... and %d more\n", res.Truncated)
	}
	if shrink {
		s, err := shrinkWorld(seed, p)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintf(stdout, "shrunk in %d runs to %d parameter(s): %v\nrepro: %s\n",
			s.Runs, len(s.Minimal.Diff()), s.Minimal, s.ReproCommand())
	}
	return 1
}

// runSwarm runs the randomized swarm and reports failures.
func runSwarm(seedBase uint64, worlds, parallel int, mutate func(*simtest.Params) error, shrink, fork, verbose bool, stdout, stderr io.Writer) int {
	var mutateErr error
	sum, err := simtest.Swarm(simtest.SwarmConfig{
		SeedBase: seedBase,
		Worlds:   worlds,
		Parallel: parallel,
		Fork:     fork,
		Mutate: func(p *simtest.Params) {
			if err := mutate(p); err != nil && mutateErr == nil {
				mutateErr = err
			}
		},
		OnResult: func(r simtest.Result) {
			if verbose {
				printWorld(stdout, r)
			}
		},
	})
	if mutateErr != nil {
		fmt.Fprintln(stderr, mutateErr)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	fmt.Fprintf(stdout, "swarm: %d worlds over seeds [%d, %d), %d connected, scenarios %v\n",
		sum.Worlds, seedBase, seedBase+uint64(worlds), sum.Connected, scenarioLine(sum.ByScenario))
	for _, e := range sum.Errors {
		fmt.Fprintf(stdout, "ERROR %v\n", e)
	}
	for _, f := range sum.Failures {
		fmt.Fprintf(stdout, "FAIL seed %d (%v): %d violation(s), first: %v\n",
			f.Seed, f.Params, len(f.Violations)+f.Truncated, f.Violations[0])
		if shrink {
			shrinkWorld := simtest.Shrink
			if fork {
				shrinkWorld = simtest.ShrinkFork
			}
			s, err := shrinkWorld(f.Seed, f.Params)
			if err != nil {
				fmt.Fprintf(stderr, "shrink seed %d: %v\n", f.Seed, err)
				continue
			}
			fmt.Fprintf(stdout, "  shrunk in %d runs: %s\n", s.Runs, s.ReproCommand())
		} else {
			repro := fmt.Sprintf("go run ./cmd/simtest -seed %d -shrink", f.Seed)
			if fork {
				repro += " -fork"
			}
			fmt.Fprintf(stdout, "  repro: %s\n", repro)
		}
	}
	if sum.Failed() {
		return 1
	}
	fmt.Fprintln(stdout, "all invariants hold")
	return 0
}

// printWorld renders a one-line world summary.
func printWorld(w io.Writer, r simtest.Result) {
	status := "ok"
	if r.Failed() {
		status = fmt.Sprintf("FAIL(%d)", len(r.Violations)+r.Truncated)
	}
	fmt.Fprintf(w, "seed %d: %s connected=%t windows=%d injectTx=%d [%v]\n",
		r.Seed, status, r.Connected, r.Windows, r.InjectTx, r.Params)
}

// scenarioLine renders scenario counts deterministically.
func scenarioLine(m map[string]int) string {
	var parts []string
	for _, s := range simtest.Scenarios() {
		if n := m[s]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", s, n))
		}
	}
	return strings.Join(parts, " ")
}
