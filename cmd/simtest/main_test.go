package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCapture(t *testing.T, argv ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(argv, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunFlagError(t *testing.T) {
	code, _, stderr := runCapture(t, "-nonsense")
	if code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "nonsense") {
		t.Fatalf("stderr does not mention the bad flag: %q", stderr)
	}
	if code, _, _ = runCapture(t, "stray"); code != 2 {
		t.Fatalf("stray positional arg: exit %d, want 2", code)
	}
}

func TestRunBadOverride(t *testing.T) {
	if code, _, stderr := runCapture(t, "-seed", "3", "-base", "-p", "nope=1"); code != 2 {
		t.Fatalf("unknown param: exit %d, want 2 (stderr %q)", code, stderr)
	}
	if code, _, _ := runCapture(t, "-seed", "3", "-base", "-p", "noequals"); code != 2 {
		t.Fatalf("malformed -p: exit %d, want 2", code)
	}
	// Swarm mode must also surface mutate errors, not swallow them.
	if code, _, _ := runCapture(t, "-worlds", "2", "-p", "nope=1"); code != 2 {
		t.Fatalf("swarm with unknown param: exit %d, want 2", code)
	}
}

func TestRunSingleWorldPasses(t *testing.T) {
	code, stdout, stderr := runCapture(t, "-seed", "3", "-base")
	if code != 0 {
		t.Fatalf("default world: exit %d (stdout %q, stderr %q)", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "all invariants hold") {
		t.Fatalf("missing pass banner: %q", stdout)
	}
}

func TestRunBrokenWideningShrinks(t *testing.T) {
	code, stdout, _ := runCapture(t,
		"-seed", "99", "-base", "-p", "breakWidening=0.5", "-shrink")
	if code != 1 {
		t.Fatalf("broken widening: exit %d, want 1\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "widening-eq4") {
		t.Fatalf("violation not reported: %q", stdout)
	}
	if !strings.Contains(stdout, "repro: go run ./cmd/simtest -seed 99 -base") ||
		!strings.Contains(stdout, "breakWidening") {
		t.Fatalf("repro command missing or incomplete: %q", stdout)
	}
}

func TestRunSwarmSmoke(t *testing.T) {
	code, stdout, stderr := runCapture(t, "-worlds", "4", "-seed-base", "42000", "-v")
	if code != 0 {
		t.Fatalf("swarm: exit %d (stdout %q, stderr %q)", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "seeds [42000, 42004)") {
		t.Fatalf("seed range not logged: %q", stdout)
	}
	if got := strings.Count(stdout, "seed 4200"); got != 4 {
		t.Fatalf("-v printed %d world lines, want 4:\n%s", got, stdout)
	}
}
