// Command benchjson converts `go test -bench` output into a stable JSON
// document and compares two such documents as a benchmark-regression gate.
//
// The repository has no external benchstat dependency; this tool covers the
// two workflows CI needs:
//
//	go test -bench . -benchmem ./... | benchjson -o BENCH.json
//	go test -bench . -benchmem ./... | benchjson -check BENCH_3.json
//
// Convert mode parses standard benchmark result lines — including custom
// metrics such as "attempts/op" reported via b.ReportMetric — and writes
// one JSON object. Check mode parses the current run from stdin and fails
// (exit 1) when, against the baseline:
//
//   - allocs/op increased at all (allocation counts are deterministic, so
//     any increase is a real regression), or
//   - ns/op increased by more than -ns-threshold percent (default 30; CI
//     timing is noisy, so this is a coarse tripwire, not a microscope).
//
// Benchmarks present on only one side are reported and skipped.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"injectable/internal/benchfmt"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(argv []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out             = fs.String("o", "", "write parsed benchmarks as JSON to this file (- for stdout)")
		check           = fs.String("check", "", "compare stdin's benchmarks against this baseline JSON; exit 1 on regression")
		nsThreshold     = fs.Float64("ns-threshold", 30, "percent ns/op increase tolerated in -check mode (allocs/op tolerates none)")
		allocsThreshold = fs.Float64("allocs-threshold", 0, "percent allocs/op increase tolerated in -check mode (0 = strict; use for HTTP-path benches whose counts wobble)")
		nsFatal         = fs.Bool("ns-fatal", false, "treat ns/op threshold breaches as failures instead of warnings")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	if (*out == "") == (*check == "") {
		fmt.Fprintln(stderr, "benchjson: exactly one of -o or -check is required")
		return 2
	}

	cur, err := benchfmt.Parse(stdin)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: parsing stdin: %v\n", err)
		return 2
	}
	if len(cur.Benchmarks) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark result lines on stdin")
		return 2
	}

	if *out != "" {
		if err := write(*out, stdout, cur); err != nil {
			fmt.Fprintf(stderr, "benchjson: %v\n", err)
			return 2
		}
		return 0
	}

	base, err := read(*check)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: reading baseline: %v\n", err)
		return 2
	}
	report := benchfmt.Compare(base, cur, benchfmt.GateConfig{
		NSThresholdPct:    *nsThreshold,
		NSFatal:           *nsFatal,
		AllocThresholdPct: *allocsThreshold,
	})
	for _, line := range report.Lines {
		fmt.Fprintln(stdout, line)
	}
	if report.Failed {
		fmt.Fprintln(stderr, "benchjson: regression gate FAILED")
		return 1
	}
	fmt.Fprintln(stdout, "benchjson: regression gate passed")
	return 0
}

func write(path string, stdout io.Writer, s *benchfmt.Suite) error {
	w := stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	// Stable order for committed baselines.
	sort.Slice(s.Benchmarks, func(i, j int) bool { return s.Benchmarks[i].Name < s.Benchmarks[j].Name })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

func read(path string) (*benchfmt.Suite, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var s benchfmt.Suite
	if err := json.NewDecoder(f).Decode(&s); err != nil {
		return nil, err
	}
	return &s, nil
}
