package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

const benchOut = `goos: linux
BenchmarkInject-8   	    1000	      1200 ns/op	     128 B/op	       3 allocs/op
BenchmarkSniff-8    	    2000	       800 ns/op	      64 B/op	       2 allocs/op
PASS
`

// benchOutRegressed doubles Inject's allocations against benchOut.
const benchOutRegressed = `BenchmarkInject-8   	    1000	      1210 ns/op	     128 B/op	       6 allocs/op
BenchmarkSniff-8    	    2000	       790 ns/op	      64 B/op	       2 allocs/op
`

func runBenchjson(t *testing.T, stdin string, argv ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(argv, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunFlagErrors(t *testing.T) {
	if code, _, _ := runBenchjson(t, benchOut, "-nonsense"); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
	// Exactly one of -o / -check.
	if code, _, stderr := runBenchjson(t, benchOut); code != 2 || !strings.Contains(stderr, "exactly one") {
		t.Fatalf("no mode: exit %d stderr %q", code, stderr)
	}
	if code, _, _ := runBenchjson(t, benchOut, "-o", "-", "-check", "x.json"); code != 2 {
		t.Fatal("both modes accepted")
	}
	if code, _, stderr := runBenchjson(t, "no benchmarks here\n", "-o", "-"); code != 2 ||
		!strings.Contains(stderr, "no benchmark result lines") {
		t.Fatalf("empty input: exit %d stderr %q", code, stderr)
	}
}

func TestRunConvertToStdout(t *testing.T) {
	code, stdout, stderr := runBenchjson(t, benchOut, "-o", "-")
	if code != 0 {
		t.Fatalf("convert: exit %d, stderr %q", code, stderr)
	}
	for _, want := range []string{"BenchmarkInject-8", "BenchmarkSniff-8", "ns/op"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("JSON output missing %q:\n%s", want, stdout)
		}
	}
}

// baseline writes benchOut's JSON to a temp file and returns its path.
func baseline(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if code, _, stderr := runBenchjson(t, benchOut, "-o", path); code != 0 {
		t.Fatalf("writing baseline: exit %d, stderr %q", code, stderr)
	}
	return path
}

func TestRunCheckGatePasses(t *testing.T) {
	code, stdout, stderr := runBenchjson(t, benchOut, "-check", baseline(t))
	if code != 0 {
		t.Fatalf("identical run failed the gate: exit %d\n%s%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "regression gate passed") {
		t.Fatalf("missing pass banner: %q", stdout)
	}
}

func TestRunCheckGateFailsOnAllocRegression(t *testing.T) {
	code, stdout, stderr := runBenchjson(t, benchOutRegressed, "-check", baseline(t))
	if code != 1 {
		t.Fatalf("alloc regression not fatal: exit %d\n%s", code, stdout)
	}
	if !strings.Contains(stderr, "FAILED") {
		t.Fatalf("missing failure banner: %q", stderr)
	}
	if !strings.Contains(stdout, "BenchmarkInject-8") {
		t.Fatalf("report does not name the regressed benchmark:\n%s", stdout)
	}
}

func TestRunCheckMissingBaseline(t *testing.T) {
	if code, _, stderr := runBenchjson(t, benchOut, "-check", filepath.Join(t.TempDir(), "absent.json")); code != 2 ||
		!strings.Contains(stderr, "baseline") {
		t.Fatalf("missing baseline: exit %d stderr %q", code, stderr)
	}
}
