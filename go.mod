module injectable

go 1.22
