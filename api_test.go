package injectable_test

import (
	"testing"

	"injectable"
)

// TestPublicAPIQuickstart exercises the facade end-to-end exactly as the
// README shows it.
func TestPublicAPIQuickstart(t *testing.T) {
	w := injectable.NewWorld(injectable.WorldConfig{Seed: 42})
	bulb := injectable.NewLightbulb(w.NewDevice(injectable.DeviceConfig{
		Name: "bulb", Position: injectable.Position{X: 0},
	}))
	phone := injectable.NewSmartphone(w.NewDevice(injectable.DeviceConfig{
		Name: "phone", Position: injectable.Position{X: 2},
	}), injectable.SmartphoneConfig{})
	attacker := injectable.NewAttacker(w.NewDevice(injectable.DeviceConfig{
		Name: "attacker", Position: injectable.Position{X: 1, Y: 1.73},
		ClockPPM: 20,
	}).Stack, injectable.InjectorConfig{})

	attacker.Sniffer.Start()
	bulb.Peripheral.StartAdvertising()
	phone.Connect(bulb.Peripheral.Device.Address())
	w.RunFor(3 * injectable.Second)

	if !attacker.Sniffer.Following() {
		t.Fatal("sniffer not following")
	}
	var rep *injectable.Report
	err := attacker.InjectWrite(bulb.ControlHandle(), injectable.PowerCommand(true),
		func(r injectable.Report) { rep = &r })
	if err != nil {
		t.Fatal(err)
	}
	w.RunFor(30 * injectable.Second)
	if rep == nil || !rep.Success || !bulb.On {
		t.Fatalf("quickstart failed: rep=%v on=%t", rep, bulb.On)
	}
	if !phone.Central.Connected() {
		t.Fatal("connection broken")
	}
}

// TestPublicAPICustomPeripheral builds a custom GATT device through the
// facade and attacks it.
func TestPublicAPICustomPeripheral(t *testing.T) {
	w := injectable.NewWorld(injectable.WorldConfig{Seed: 43})
	dev := w.NewDevice(injectable.DeviceConfig{Name: "lock", Position: injectable.Position{X: 0}})
	lock := injectable.NewPeripheral(dev, injectable.PeripheralConfig{DeviceName: "DoorLock"})
	unlocked := false
	bolt := &injectable.Characteristic{
		UUID:       injectable.UUID16(0xF00D),
		Properties: injectable.PropRead | injectable.PropWrite,
		Value:      []byte{0},
		OnWrite:    func(v []byte) { unlocked = len(v) == 1 && v[0] == 1 },
	}
	lock.GATT.AddService(&injectable.Service{
		UUID:            injectable.UUID16(0xF000),
		Characteristics: []*injectable.Characteristic{bolt},
	})

	phone := injectable.NewSmartphone(w.NewDevice(injectable.DeviceConfig{
		Name: "phone", Position: injectable.Position{X: 2},
	}), injectable.SmartphoneConfig{})
	attacker := injectable.NewAttacker(w.NewDevice(injectable.DeviceConfig{
		Name: "attacker", Position: injectable.Position{X: 1, Y: 1.73},
	}).Stack, injectable.InjectorConfig{})

	attacker.Sniffer.Start()
	lock.StartAdvertising()
	phone.Connect(dev.Address())
	w.RunFor(3 * injectable.Second)

	var rep *injectable.Report
	if err := attacker.InjectWrite(bolt.ValueHandle, []byte{1}, func(r injectable.Report) { rep = &r }); err != nil {
		t.Fatal(err)
	}
	w.RunFor(30 * injectable.Second)
	if rep == nil || !rep.Success || !unlocked {
		t.Fatal("custom-device injection failed")
	}
}

// TestPublicAPIIDS attaches the monitor through the facade.
func TestPublicAPIIDS(t *testing.T) {
	w := injectable.NewWorld(injectable.WorldConfig{Seed: 44})
	monitor := injectable.NewMonitor(injectable.MonitorConfig{})
	w.Medium.AddObserver(monitor)

	bulb := injectable.NewLightbulb(w.NewDevice(injectable.DeviceConfig{Name: "bulb"}))
	phone := injectable.NewSmartphone(w.NewDevice(injectable.DeviceConfig{
		Name: "phone", Position: injectable.Position{X: 2},
	}), injectable.SmartphoneConfig{})
	bulb.Peripheral.StartAdvertising()
	phone.Connect(bulb.Peripheral.Device.Address())
	w.RunFor(5 * injectable.Second)
	if n := len(monitor.AlertsOf(injectable.AlertJamming)); n != 0 {
		t.Fatalf("%d jamming false positives", n)
	}
}

// TestPublicAPIPathLossAndCapture exercises the configuration surface.
func TestPublicAPIPathLossAndCapture(t *testing.T) {
	wall := injectable.Wall{
		A: injectable.Position{X: 1, Y: -5}, B: injectable.Position{X: 1, Y: 5}, Loss: 7,
	}
	w := injectable.NewWorld(injectable.WorldConfig{
		Seed: 45,
		Medium: injectable.MediumConfig{
			PathLoss: injectable.LogDistancePathLoss(2.2, wall),
			Capture:  injectable.DefaultCaptureModel(),
		},
	})
	if w == nil {
		t.Fatal("world")
	}
}

// TestPublicAPIKeystrokeChain exercises the §IX extension via the facade.
func TestPublicAPIKeystrokeChain(t *testing.T) {
	w := injectable.NewWorld(injectable.WorldConfig{Seed: 46})
	fob := injectable.NewKeyfob(w.NewDevice(injectable.DeviceConfig{Name: "fob"}))
	laptop := injectable.NewComputer(w.NewDevice(injectable.DeviceConfig{
		Name: "laptop", Position: injectable.Position{X: 2},
	}))
	attacker := injectable.NewAttacker(w.NewDevice(injectable.DeviceConfig{
		Name: "attacker", Position: injectable.Position{X: 1, Y: 1.73}, ClockPPM: 20,
	}).Stack, injectable.InjectorConfig{})

	attacker.Sniffer.Start()
	fob.Peripheral.StartAdvertising()
	laptop.Connect(fob.Peripheral.Device.Address())
	w.RunFor(3 * injectable.Second)

	var ki *injectable.KeystrokeInjection
	if err := attacker.InjectKeyboard("kbd", func(k *injectable.KeystrokeInjection, err error) {
		if err == nil {
			ki = k
		}
	}); err != nil {
		t.Fatal(err)
	}
	w.RunFor(50 * injectable.Second)
	if ki == nil || !ki.Attached() {
		t.Fatal("keyboard not attached via facade")
	}
	if err := ki.Type("ok"); err != nil {
		t.Fatal(err)
	}
	w.RunFor(5 * injectable.Second)
	if laptop.Typed.String() != "ok" {
		t.Fatalf("typed %q", laptop.Typed.String())
	}
}

// TestPublicAPIForgeHelpersAndRecovery touches the remaining facade surface.
func TestPublicAPIForgeHelpersAndRecovery(t *testing.T) {
	if len(injectable.ForgeTerminateInd().Marshal()) != 4 {
		t.Fatal("ForgeTerminateInd wrong size")
	}
	if injectable.ForgeATTReadRequest(3).IsControl() {
		t.Fatal("read request must not be a control PDU")
	}
	if !injectable.ForgeConnectionUpdate(2, 18, 36, 0, 100, 50).IsControl() {
		t.Fatal("connection update must be a control PDU")
	}
	if len(injectable.ForgeATTWriteRequest(6, []byte{1}).Payload) == 0 {
		t.Fatal("write request empty")
	}
	if injectable.RingCommand()[0] == 0 {
		t.Fatal("ring command")
	}
	if len(injectable.ColorCommand(1, 2, 3)) != 7 || len(injectable.BrightnessCommand(9)) != 2 ||
		injectable.ToggleCommand() != nil {
		t.Fatal("bulb command builders")
	}
	tr := injectable.NewRecordingTracer("anchor")
	_ = injectable.Tracer(tr)

	w := injectable.NewWorld(injectable.WorldConfig{Seed: 47})
	dev := w.NewDevice(injectable.DeviceConfig{Name: "a"})
	if injectable.NewRecovery(dev.Stack, injectable.RecoveryConfig{}) == nil {
		t.Fatal("NewRecovery nil")
	}
	if injectable.NewKeyboardProfile("k") == nil {
		t.Fatal("NewKeyboardProfile nil")
	}
	if injectable.UUID16(0x1800) != injectable.UUID16(0x1800) {
		t.Fatal("UUID16 inconsistent")
	}
}
